// Package orchestrator runs GMR as an island model: N independent
// gp.Engines (each with its own split RNG stream and its own evaluator)
// advance in generation lockstep, periodically exchanging top-k elites
// around a ring, with crash-safe checkpoint/resume and a JSONL telemetry
// stream.
//
// The paper's headline results are aggregates over many independent TAG3P
// runs; the island model turns those isolated restarts into a cooperating
// search (migrated elites seed neighboring populations) while keeping every
// island's evolution deterministic. Determinism contract (DESIGN.md §8):
//
//   - Islands interact only at generation barriers (migration), and
//     migration is RNG-free (top-k by fitness into worst-k of the next
//     island), so a run is a pure function of the Config.
//   - A run checkpointed at generation G/2 and resumed produces bitwise-
//     identical results to an uninterrupted run, provided the evaluator
//     computes fitness as a pure function of (structure, params) — true for
//     evalx with short-circuiting disabled. With short-circuiting enabled,
//     the committed reference is carried through the checkpoint, but
//     cache-warmth differences can still perturb surrogate (short-circuited)
//     fitnesses.
//
// Checkpoints are atomic (temp file + rename) versioned JSON snapshots;
// a truncated or corrupted file is rejected with a descriptive error. Every
// write rotates the previous checkpoint to a ".bak" last-good backup, and
// Resume falls back to it (with a telemetry event) when the primary file is
// corrupted — see checkpoint.go and the fault-injection hooks (Config.Faults)
// that chaos tests use to provoke torn writes, worker panics, and NaN
// cascades on demand.
package orchestrator

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"

	"gmr/internal/evalx"
	"gmr/internal/faultinject"
	"gmr/internal/gp"
	"gmr/internal/obs"
	"gmr/internal/stats"
	"gmr/internal/tag"
)

// Config configures an island run.
type Config struct {
	// Islands is the number of islands (default 4).
	Islands int
	// MigrationEvery is the number of generations between elite
	// migrations (default 5); negative disables migration.
	MigrationEvery int
	// Migrants is the number of elites each island sends to its ring
	// successor per migration (default 2).
	Migrants int
	// GP is the per-island engine configuration. GP.MaxGen is the total
	// generation budget; GP.Seed is the master seed from which each
	// island's independent stream is split.
	GP gp.Config
	// Grammar is the shared TAG (engines never mutate it).
	Grammar *tag.Grammar
	// NewEvaluator builds island i's evaluator. Each island must get its
	// own evaluator instance: sharing one would couple islands through
	// the short-circuiting reference and break determinism.
	NewEvaluator func(island int) gp.Evaluator
	// ConfigureIsland, when non-nil, post-processes island i's engine
	// config (after the per-island seed is assigned) — e.g. per-island
	// pre-calibrated InitParams or seed individuals.
	ConfigureIsland func(island int, cfg gp.Config) gp.Config
	// CheckpointPath, when non-empty, enables checkpointing: a snapshot
	// is written atomically every CheckpointEvery generations, on
	// context cancellation, and after the final generation.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in generations (default
	// 10); negative checkpoints only on cancellation and completion.
	CheckpointEvery int
	// Telemetry, when non-nil, receives the JSONL run telemetry.
	Telemetry io.Writer
	// Faults, when non-nil, is the run's fault injector. The orchestrator
	// uses it for checkpoint-write truncation (the Truncate class) and
	// reports its injection tally in the run_end telemetry record; pass
	// the same injector to the evaluators (evalx.Options.Faults) so one
	// counter set covers the whole run.
	Faults *faultinject.Injector
	// Obs, when non-nil, is the unified observability registry: New
	// registers per-island progress gauges and evaluator counter families
	// on it (see obs.go), and Run appends a per-generation "obs" registry
	// snapshot record to the telemetry stream. Nil keeps the stream
	// byte-identical to the pre-registry format.
	Obs *obs.Registry
	// Tracer, when non-nil, records orchestration spans (orch.generation,
	// orch.migrate, orch.checkpoint) and is handed to every island engine
	// for its per-phase spans. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Islands == 0 {
		c.Islands = 4
	}
	if c.MigrationEvery == 0 {
		c.MigrationEvery = 5
	}
	if c.Migrants == 0 {
		c.Migrants = 2
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10
	}
	return c
}

// Result is the outcome of an island run.
type Result struct {
	// Best is the best individual across all islands (a clone).
	Best *gp.Individual
	// BestIsland is the island that produced Best.
	BestIsland int
	// PerIsland holds each island's engine result, in island order.
	PerIsland []*gp.Result
	// Generations is the number of completed generations (equals the
	// budget unless the run was interrupted).
	Generations int
	// Migrations counts migration events (island-to-island transfers).
	Migrations int
	// Interrupted reports that the run stopped early on context
	// cancellation (after writing a checkpoint when configured).
	Interrupted bool
}

// Orchestrator drives the islands. Construct with New, optionally Resume
// from a checkpoint, then Run.
type Orchestrator struct {
	cfg     Config
	engines []*gp.Engine
	evals   []gp.Evaluator
	gen     int
	migs    int
	tele    *telemetry
	resumed bool
}

// New validates the configuration and builds the islands. Island i's engine
// seed is the i-th draw of a splittable stream over GP.Seed, so island
// streams are independent yet reproducible from the one master seed.
func New(cfg Config) (*Orchestrator, error) {
	cfg = cfg.withDefaults()
	if cfg.Islands < 1 {
		return nil, fmt.Errorf("orchestrator: need at least 1 island, got %d", cfg.Islands)
	}
	if cfg.Grammar == nil || cfg.NewEvaluator == nil {
		return nil, fmt.Errorf("orchestrator: grammar and evaluator factory are required")
	}
	if cfg.GP.MaxGen <= 0 {
		return nil, fmt.Errorf("orchestrator: GP.MaxGen must be positive")
	}
	if cfg.Migrants < 0 {
		return nil, fmt.Errorf("orchestrator: Migrants must be non-negative, got %d", cfg.Migrants)
	}
	o := &Orchestrator{
		cfg:  cfg,
		tele: newTelemetry(cfg.Telemetry),
	}
	master := stats.NewRNG(cfg.GP.Seed)
	for i := 0; i < cfg.Islands; i++ {
		icfg := cfg.GP
		icfg.Seed = master.Int63()
		icfg.Hook = nil // the orchestrator steps engines itself
		icfg.Tracer = cfg.Tracer
		if cfg.ConfigureIsland != nil {
			icfg = cfg.ConfigureIsland(i, icfg)
		}
		ev := cfg.NewEvaluator(i)
		eng, err := gp.NewEngine(cfg.Grammar, ev, icfg)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: island %d: %v", i, err)
		}
		o.engines = append(o.engines, eng)
		o.evals = append(o.evals, ev)
	}
	o.registerObs()
	return o, nil
}

// parallelIslands runs fn for every island concurrently and returns the
// first error (by island order, for determinism of error reporting).
//
// Each island's goroutine carries a pprof label ("island" → index), so CPU
// and heap profiles attribute samples per island. Goroutines spawned inside
// fn — notably the gp engine's worker pool, started under parallelIslands —
// inherit the label, and the evaluator's eval_phase labels (see
// evalx.SetProfileLabels) nest under it. The label costs one pprof.Do per
// island per barrier, far off any hot path.
func (o *Orchestrator) parallelIslands(fn func(i int) error) error {
	errs := make([]error, len(o.engines))
	var wg sync.WaitGroup
	wg.Add(len(o.engines))
	for i := range o.engines {
		go func(i int) {
			defer wg.Done()
			pprof.Do(context.Background(), pprof.Labels("island", strconv.Itoa(i)), func(context.Context) {
				errs[i] = fn(i)
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("island %d: %w", i, err)
		}
	}
	return nil
}

// Run executes the island loop: lockstep generations, ring migration, and
// periodic checkpoints, until the generation budget is exhausted or ctx is
// cancelled. Cancellation is handled at generation barriers (the running
// generation completes first): a checkpoint is written when configured and
// the partial result is returned with Interrupted set.
func (o *Orchestrator) Run(ctx context.Context) (*Result, error) {
	defer func() {
		for _, e := range o.engines {
			e.Close()
		}
	}()
	// Start all islands (builds + evaluates generation-0 populations, or
	// just relaunches worker pools after a Resume).
	fresh := !o.resumed
	if err := o.parallelIslands(func(i int) error { return o.engines[i].Start() }); err != nil {
		return nil, err
	}
	o.tele.runStart(o.cfg, o.gen, o.resumed)
	if fresh {
		o.emitGenRecords() // generation 0 (initial populations)
	}

	total := o.cfg.GP.MaxGen
	interrupted := false
	for o.gen < total {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		span := o.cfg.Tracer.Start("orch.generation")
		err := o.parallelIslands(func(i int) error { return o.engines[i].StepGen() })
		span.End()
		if err != nil {
			return nil, err
		}
		o.gen++
		o.emitGenRecords()
		if o.migrationDue() {
			mspan := o.cfg.Tracer.Start("orch.migrate")
			o.migrate()
			mspan.End()
		}
		if o.cfg.CheckpointPath != "" && o.cfg.CheckpointEvery > 0 &&
			o.gen%o.cfg.CheckpointEvery == 0 && o.gen < total {
			if err := o.checkpoint(); err != nil {
				return nil, err
			}
		}
	}
	if o.cfg.CheckpointPath != "" {
		if err := o.checkpoint(); err != nil {
			return nil, err
		}
	}

	res := o.result(interrupted)
	o.tele.runEnd(res, o.Quarantines(), o.cfg.Faults.Snapshot())
	return res, nil
}

// migrationDue reports whether elites migrate after the current generation.
func (o *Orchestrator) migrationDue() bool {
	me := o.cfg.MigrationEvery
	return me > 0 && len(o.engines) > 1 && o.gen%me == 0 && o.gen < o.cfg.GP.MaxGen
}

// migrate performs one ring migration: island i's top-k elites (clones,
// collected before any injection so the exchange is simultaneous) replace
// the worst-k individuals of island (i+1) mod N. Migration is deterministic
// and draws no randomness.
func (o *Orchestrator) migrate() {
	n := len(o.engines)
	k := o.cfg.Migrants
	outbound := make([][]*gp.Individual, n)
	for i, e := range o.engines {
		pop := e.Population()
		m := k
		if m > len(pop) {
			m = len(pop)
		}
		elites := make([]*gp.Individual, m)
		for j := 0; j < m; j++ {
			elites[j] = pop[j].Clone()
		}
		outbound[i] = elites
	}
	for i := range o.engines {
		dst := (i + 1) % n
		injected := o.engines[dst].ReplaceWorst(outbound[i])
		o.migs++
		o.tele.migration(o.gen, i, dst, injected, outbound[i][0].Fitness)
	}
}

// emitGenRecords writes one telemetry record per island for the current
// generation, including the engine's panic-quarantine counter and the
// evaluator's cache snapshot when available.
func (o *Orchestrator) emitGenRecords() {
	for i, e := range o.engines {
		var cache *evalx.Snapshot
		if sp, ok := o.evals[i].(interface{ Snapshot() evalx.Snapshot }); ok {
			s := sp.Snapshot()
			cache = &s
		}
		o.tele.generation(i, e.LastStats(), e.Quarantines(), cache)
	}
	o.emitObsRecord()
}

// Quarantines totals panic-recovered evaluations across all islands.
func (o *Orchestrator) Quarantines() int64 {
	var total int64
	for _, e := range o.engines {
		total += e.Quarantines()
	}
	return total
}

// result assembles the run outcome.
func (o *Orchestrator) result(interrupted bool) *Result {
	res := &Result{
		Generations: o.gen,
		Migrations:  o.migs,
		Interrupted: interrupted,
	}
	for i, e := range o.engines {
		r := e.Result()
		res.PerIsland = append(res.PerIsland, r)
		if res.Best == nil || r.Best.Fitness < res.Best.Fitness {
			res.Best = r.Best.Clone()
			res.BestIsland = i
		}
	}
	return res
}

// PoolModels gathers every island's best and final population into one
// slice, fitness-sorted — the cross-run candidate pool the paper's
// reporting protocol ranks by test RMSE.
func (r *Result) PoolModels() []*gp.Individual {
	var pool []*gp.Individual
	for _, ir := range r.PerIsland {
		if ir.Best != nil {
			pool = append(pool, ir.Best)
		}
		pool = append(pool, ir.Final...)
	}
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].Fitness < pool[j].Fitness })
	return pool
}
