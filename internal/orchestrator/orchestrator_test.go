package orchestrator

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"gmr/internal/expr"
	"gmr/internal/gp"
	"gmr/internal/tag"
)

// testGrammar builds a small symbolic-regression grammar: start from the
// constant 1 (labeled Exp), grow with β: Exp → (Exp* + R↓), R ∈ {0.5, 1, 2}.
// It mirrors the gp package's toy test grammar.
func testGrammar() *tag.Grammar {
	alpha := &tag.ElemTree{Name: "a", Kind: tag.Alpha, RootSym: "Exp",
		Root: expr.NewLit(1).Labeled("Exp")}
	beta := &tag.ElemTree{Name: "b:add", Kind: tag.Beta, RootSym: "Exp",
		Root: expr.Add(expr.NewFoot("Exp"), expr.NewSubSite("R")).Labeled("Exp")}
	return &tag.Grammar{
		Alphas: []*tag.ElemTree{alpha},
		Betas:  map[string][]*tag.ElemTree{"Exp": {beta}},
		Lexemes: map[string]tag.LexemeGen{"R": func(rng *rand.Rand) *tag.LexemeChoice {
			vals := []float64{0.5, 1, 2}
			return &tag.LexemeChoice{Name: "R", Tree: expr.NewLit(vals[rng.Intn(len(vals))])}
		}},
	}
}

// valueEvaluator is a pure fitness function (of structure and params only),
// so orchestrated runs satisfy the bitwise-determinism contract. It has no
// Snapshot method: gen telemetry records omit the cache field entirely.
type valueEvaluator struct {
	target float64
	evals  atomic.Int64
}

func (v *valueEvaluator) BeginBatch() {}
func (v *valueEvaluator) EndBatch()   {}
func (v *valueEvaluator) Evaluate(ind *gp.Individual) {
	v.evals.Add(1)
	derived, err := ind.Deriv.Derive()
	if err != nil {
		ind.Fitness = math.Inf(1)
		ind.Evaluated = true
		return
	}
	val, err := derived.Eval(&expr.Env{})
	if err != nil {
		ind.Fitness = math.Inf(1)
		ind.Evaluated = true
		return
	}
	for _, p := range ind.Params {
		val += p
	}
	ind.Fitness = math.Abs(val - v.target)
	ind.Evaluated = true
	ind.FullEval = true
}

func testConfig(seed int64, maxGen int) Config {
	return Config{
		Islands:        4,
		MigrationEvery: 2,
		Migrants:       1,
		GP: gp.Config{
			PopSize: 16, MaxGen: maxGen, MinSize: 1, MaxSize: 12,
			TournamentSize: 3, EliteSize: 2, LocalSearchSteps: 1,
			Priors:           []gp.Prior{{Mean: 0.5, Min: 0, Max: 1}},
			InitParamsAtMean: true,
			Seed:             seed,
			Workers:          2,
		},
		Grammar:         testGrammar(),
		NewEvaluator:    func(int) gp.Evaluator { return &valueEvaluator{target: 7.25} },
		CheckpointEvery: -1, // only on cancellation/completion
	}
}

// deterministicLines filters a JSONL telemetry stream down to the records the
// determinism contract covers ("gen" and "migration"), optionally keeping only
// generations > after.
func deterministicLines(t *testing.T, stream []byte, after int) []string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(string(stream)), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Type string `json:"type"`
			Gen  int    `json:"gen"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad telemetry line %q: %v", line, err)
		}
		if rec.Type != "gen" && rec.Type != "migration" {
			continue
		}
		if rec.Gen <= after {
			continue
		}
		out = append(out, line)
	}
	return out
}

// cancelAtGen is an io.Writer that tees telemetry into a buffer and cancels
// a context as soon as it sees a "gen" record for the target generation. The
// orchestrator honors cancellation at the next generation barrier, so the run
// stops deterministically right after that generation (and its migration).
type cancelAtGen struct {
	buf    bytes.Buffer
	target int
	cancel context.CancelFunc
}

func (c *cancelAtGen) Write(p []byte) (int, error) {
	n, err := c.buf.Write(p)
	var rec struct {
		Type string `json:"type"`
		Gen  int    `json:"gen"`
	}
	if json.Unmarshal(bytes.TrimSpace(p), &rec) == nil &&
		rec.Type == "gen" && rec.Gen == c.target {
		c.cancel()
	}
	return n, err
}

// TestResumeBitwiseDeterministic is the acceptance test: a 4-island run for G
// generations produces a bitwise-identical best individual and deterministic
// telemetry to the same run checkpointed at G/2 and resumed.
func TestResumeBitwiseDeterministic(t *testing.T) {
	const (
		seed = int64(42)
		G    = 8
	)

	// Continuous reference run.
	var contTele bytes.Buffer
	contCfg := testConfig(seed, G)
	contCfg.Telemetry = &contTele
	contOrch, err := New(contCfg)
	if err != nil {
		t.Fatal(err)
	}
	contRes, err := contOrch.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if contRes.Interrupted || contRes.Generations != G {
		t.Fatalf("continuous run: interrupted=%v generations=%d, want complete %d",
			contRes.Interrupted, contRes.Generations, G)
	}

	// Interrupted run: cancel at the G/2 barrier; the final checkpoint then
	// snapshots exactly generation G/2 (post-migration).
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tee := &cancelAtGen{target: G / 2, cancel: cancel}
	halfCfg := testConfig(seed, G)
	halfCfg.CheckpointPath = ckPath
	halfCfg.Telemetry = tee
	halfOrch, err := New(halfCfg)
	if err != nil {
		t.Fatal(err)
	}
	halfRes, err := halfOrch.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !halfRes.Interrupted || halfRes.Generations != G/2 {
		t.Fatalf("interrupted run: interrupted=%v generations=%d, want interrupted at %d",
			halfRes.Interrupted, halfRes.Generations, G/2)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Gen != G/2 {
		t.Fatalf("checkpoint at generation %d, want %d", ck.Gen, G/2)
	}
	// The atomic writer must leave no temp droppings behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s after checkpoint", e.Name())
		}
	}

	// Resumed run: fresh orchestrator, restore, finish the budget.
	var resTele bytes.Buffer
	resCfg := testConfig(seed, G)
	resCfg.Telemetry = &resTele
	resOrch, err := New(resCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resOrch.Resume(ckPath); err != nil {
		t.Fatal(err)
	}
	resRes, err := resOrch.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resRes.Interrupted || resRes.Generations != G {
		t.Fatalf("resumed run: interrupted=%v generations=%d, want complete %d",
			resRes.Interrupted, resRes.Generations, G)
	}

	// Best individual: bitwise-identical fitness, same structure, bit-equal
	// parameters, same originating island.
	if got, want := math.Float64bits(resRes.Best.Fitness), math.Float64bits(contRes.Best.Fitness); got != want {
		t.Errorf("best fitness differs: resumed %x (%v) vs continuous %x (%v)",
			got, resRes.Best.Fitness, want, contRes.Best.Fitness)
	}
	if got, want := resRes.Best.Deriv.String(), contRes.Best.Deriv.String(); got != want {
		t.Errorf("best derivation differs:\nresumed   %s\ncontinuous %s", got, want)
	}
	if len(resRes.Best.Params) != len(contRes.Best.Params) {
		t.Fatalf("best params length differs: %d vs %d", len(resRes.Best.Params), len(contRes.Best.Params))
	}
	for i := range resRes.Best.Params {
		if math.Float64bits(resRes.Best.Params[i]) != math.Float64bits(contRes.Best.Params[i]) {
			t.Errorf("best param %d differs: %v vs %v", i, resRes.Best.Params[i], contRes.Best.Params[i])
		}
	}
	if resRes.BestIsland != contRes.BestIsland {
		t.Errorf("best island differs: %d vs %d", resRes.BestIsland, contRes.BestIsland)
	}
	if resRes.Migrations != contRes.Migrations {
		t.Errorf("migration count differs: %d vs %d", resRes.Migrations, contRes.Migrations)
	}

	// Telemetry: the deterministic records ("gen"/"migration") of the
	// interrupted stream (≤ G/2) plus the resumed stream (> G/2) must be
	// byte-identical to the continuous stream's.
	contLines := deterministicLines(t, contTele.Bytes(), -1)
	stitched := append(deterministicLines(t, tee.buf.Bytes(), -1),
		deterministicLines(t, resTele.Bytes(), G/2)...)
	if len(contLines) != len(stitched) {
		t.Fatalf("telemetry line count differs: continuous %d vs stitched %d",
			len(contLines), len(stitched))
	}
	for i := range contLines {
		if contLines[i] != stitched[i] {
			t.Errorf("telemetry line %d differs:\ncontinuous %s\nstitched   %s",
				i, contLines[i], stitched[i])
		}
	}
}

func TestMigrationMovesElites(t *testing.T) {
	var tele bytes.Buffer
	cfg := testConfig(7, 6)
	cfg.Islands = 2
	cfg.MigrationEvery = 1
	cfg.Migrants = 2
	cfg.Telemetry = &tele
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 2 islands × migrations after gens 1..5 (not after the final gen).
	if want := 2 * 5; res.Migrations != want {
		t.Errorf("migrations = %d, want %d", res.Migrations, want)
	}
	migs := 0
	for _, line := range strings.Split(strings.TrimSpace(tele.String()), "\n") {
		var rec struct {
			Type  string `json:"type"`
			From  int    `json:"from"`
			To    int    `json:"to"`
			Count int    `json:"count"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad telemetry line %q: %v", line, err)
		}
		if rec.Type != "migration" {
			continue
		}
		migs++
		if rec.To != (rec.From+1)%2 {
			t.Errorf("migration %d→%d is not a ring edge", rec.From, rec.To)
		}
		if rec.Count != 2 {
			t.Errorf("migration carried %d migrants, want 2", rec.Count)
		}
	}
	if migs != res.Migrations {
		t.Errorf("telemetry has %d migration records, result counted %d", migs, res.Migrations)
	}
	if pool := res.PoolModels(); len(pool) == 0 {
		t.Error("PoolModels returned empty pool")
	} else {
		for i := 1; i < len(pool); i++ {
			if pool[i].Fitness < pool[i-1].Fitness {
				t.Errorf("PoolModels not fitness-sorted at %d: %v < %v",
					i, pool[i].Fitness, pool[i-1].Fitness)
			}
		}
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()

	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := []struct {
		name string
		path string
		want string
	}{
		{"missing", filepath.Join(dir, "nope.ckpt"), "no such file"},
		{"garbage", write("garbage.ckpt", "not json at all"), "corrupted or truncated"},
		{"truncated", write("trunc.ckpt", `{"version":1,"gen":5,"islands":[{"ver`), "corrupted or truncated"},
		{"badversion", write("ver.ckpt", `{"version":99,"islands":[{}]}`), "version 99"},
		{"noislands", write("empty.ckpt", `{"version":1}`), "no islands"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadCheckpoint(tc.path)
			if err == nil {
				t.Fatalf("LoadCheckpoint(%s) accepted a bad checkpoint", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			o, err2 := New(testConfig(1, 4))
			if err2 != nil {
				t.Fatal(err2)
			}
			if err := o.Resume(tc.path); err == nil {
				t.Errorf("Resume(%s) accepted a bad checkpoint", tc.name)
			}
		})
	}
}

func TestResumeConfigMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	cfg := testConfig(3, 4)
	cfg.CheckpointPath = ckPath
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Same config resumes (even when already complete).
	same, err := New(testConfig(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := same.Resume(ckPath); err != nil {
		t.Fatalf("identical config refused to resume: %v", err)
	}
	if err := same.Resume(ckPath); err == nil {
		t.Error("double Resume accepted")
	}

	// A different seed is a different run: refuse.
	other, err := New(testConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Resume(ckPath); err == nil {
		t.Error("Resume accepted a checkpoint from a different configuration")
	} else if !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("mismatch error %q does not mention the configuration", err)
	}
}

func TestCancelledRunWritesCheckpointAndResumes(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	cfg := testConfig(11, 6)
	cfg.CheckpointPath = ckPath
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first generation barrier
	res, err := o.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Error("run with cancelled context not marked interrupted")
	}
	if res.Generations != 0 {
		t.Errorf("cancelled run advanced %d generations, want 0", res.Generations)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("cancelled run left no readable checkpoint: %v", err)
	}
	if ck.Gen != 0 {
		t.Errorf("checkpoint generation %d, want 0", ck.Gen)
	}

	// The checkpoint restores and the run completes its budget.
	o2, err := New(testConfig(11, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.Resume(ckPath); err != nil {
		t.Fatal(err)
	}
	res2, err := o2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Interrupted || res2.Generations != 6 {
		t.Errorf("resumed run: interrupted=%v generations=%d, want complete 6",
			res2.Interrupted, res2.Generations)
	}
	if res2.Best == nil || math.IsInf(res2.Best.Fitness, 1) {
		t.Error("resumed run produced no finite best individual")
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(1, 4)

	bad := base
	bad.Islands = -1
	if _, err := New(bad); err == nil {
		t.Error("negative island count accepted")
	}

	bad = base
	bad.Grammar = nil
	if _, err := New(bad); err == nil {
		t.Error("nil grammar accepted")
	}

	bad = base
	bad.NewEvaluator = nil
	if _, err := New(bad); err == nil {
		t.Error("nil evaluator factory accepted")
	}

	bad = base
	bad.GP.MaxGen = 0
	if _, err := New(bad); err == nil {
		t.Error("zero generation budget accepted")
	}

	bad = base
	bad.Migrants = -2
	if _, err := New(bad); err == nil {
		t.Error("negative migrant count accepted")
	}
}
