package orchestrator

import (
	"strconv"

	"gmr/internal/obs"
)

// Observability wiring (DESIGN.md §13). When Config.Obs is set the
// orchestrator registers per-island scrape-time series on it at New time:
// the engine's barrier-consistent progress mirror (generation, best-ever
// fitness, cumulative evaluations) and — for evalx-backed islands — the
// evaluator's full counter family. All series carry an "island" label, so
// one registry exposes every island side by side and a scrape never races
// the stepping goroutines (gp.Engine.Progress reads atomics written only
// at generation barriers).
//
// The JSONL stream gains a per-generation "obs" record carrying the
// registry snapshot — but only when Obs is attached. Byte-identical
// telemetry across repeat runs (the chaos-test contract) is preserved for
// every existing configuration because absent Obs the stream is unchanged.
func (o *Orchestrator) registerObs() {
	r := o.cfg.Obs
	if r == nil {
		return
	}
	for i := range o.engines {
		eng := o.engines[i]
		ls := obs.Labels{"island": strconv.Itoa(i)}
		r.GaugeFunc("gmr_gp_generation",
			"Completed generations per island (barrier-consistent).", ls,
			func() float64 { return float64(eng.Progress().Gen) })
		r.GaugeFunc("gmr_gp_best_fitness",
			"Best-ever fitness per island (+Inf before any finite model).", ls,
			func() float64 { return eng.Progress().Best })
		r.CounterFunc("gmr_gp_evaluations_total",
			"Cumulative fitness evaluations per island.", ls,
			func() float64 { return float64(eng.Progress().Evaluations) })
		if ev, ok := o.evals[i].(interface {
			RegisterObs(*obs.Registry, string, obs.Labels)
		}); ok {
			ev.RegisterObs(r, "gmr_evalx", obs.Labels{"island": strconv.Itoa(i)})
		}
	}
}

// obsRecord is the registry snapshot embedded in the telemetry stream once
// per generation when Config.Obs is attached. Snapshot returns a
// map[string]float64 and encoding/json sorts map keys, so the record layout
// is stable; values that track wall-clock (histogram sums) are naturally
// run-dependent, which is why the record exists only behind the opt-in.
type obsRecord struct {
	Type    string             `json:"type"`
	Gen     int                `json:"gen"`
	Metrics map[string]float64 `json:"metrics"`
}

func (o *Orchestrator) emitObsRecord() {
	if o.cfg.Obs == nil {
		return
	}
	o.tele.emit(obsRecord{Type: "obs", Gen: o.gen, Metrics: o.cfg.Obs.Snapshot()})
}
