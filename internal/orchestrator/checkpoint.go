package orchestrator

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"gmr/internal/faultinject"
	"gmr/internal/gp"
)

// CheckpointVersion is the checkpoint schema version; Resume rejects files
// written by an incompatible orchestrator.
const CheckpointVersion = 1

// configDigest pins the run parameters that determinism depends on. Resume
// refuses a checkpoint whose digest does not match the live Config: resuming
// under different parameters would silently produce a hybrid run.
type configDigest struct {
	Islands        int   `json:"islands"`
	MigrationEvery int   `json:"migration_every"`
	Migrants       int   `json:"migrants"`
	PopSize        int   `json:"pop_size"`
	MaxGen         int   `json:"max_gen"`
	Seed           int64 `json:"seed"`
}

func (o *Orchestrator) digest() configDigest {
	return configDigest{
		Islands:        o.cfg.Islands,
		MigrationEvery: o.cfg.MigrationEvery,
		Migrants:       o.cfg.Migrants,
		PopSize:        o.cfg.GP.PopSize,
		MaxGen:         o.cfg.GP.MaxGen,
		Seed:           o.cfg.GP.Seed,
	}
}

// Checkpoint is the on-disk snapshot of a paused island run.
type Checkpoint struct {
	Version int          `json:"version"`
	SavedAt time.Time    `json:"saved_at"`
	Config  configDigest `json:"config"`
	Gen     int          `json:"gen"`
	// Migrations carries the event counter so resumed telemetry and
	// results continue the sequence.
	Migrations int `json:"migrations"`
	// Islands holds one engine snapshot per island, in island order.
	Islands []*gp.EngineSnapshot `json:"islands"`
	// EvalSCRefBits carries each island evaluator's committed
	// short-circuiting reference (math.Float64bits), for evaluators that
	// expose one; absent entries restore to +Inf (fresh evaluator).
	EvalSCRefBits []uint64 `json:"eval_sc_ref_bits,omitempty"`
}

// scRefEvaluator is the optional evaluator surface for carrying the
// short-circuiting reference through a checkpoint (evalx implements it).
type scRefEvaluator interface {
	ShortCircuitRef() float64
	SetShortCircuitRef(float64)
}

// BackupPath returns the last-good backup location of a checkpoint path:
// before a new checkpoint is renamed into place, the previous one is
// rotated here, so Resume can fall back when the primary file turns out
// truncated or garbled (torn write, partial copy, disk corruption).
func BackupPath(path string) string { return path + ".bak" }

// checkpoint writes the current state to cfg.CheckpointPath atomically: the
// snapshot is serialized to a temp file in the same directory, synced, the
// previous checkpoint is rotated to BackupPath, and the temp file is
// renamed over the target — a crash mid-write never corrupts an existing
// checkpoint, and even a torn write that slips through (simulated by the
// Truncate fault class) leaves the previous snapshot recoverable.
func (o *Orchestrator) checkpoint() error {
	span := o.cfg.Tracer.Start("orch.checkpoint")
	defer span.End()
	ck := &Checkpoint{
		Version:    CheckpointVersion,
		SavedAt:    time.Now().UTC(),
		Config:     o.digest(),
		Gen:        o.gen,
		Migrations: o.migs,
	}
	for i, e := range o.engines {
		snap, err := e.Snapshot()
		if err != nil {
			return fmt.Errorf("orchestrator: checkpoint: island %d: %v", i, err)
		}
		ck.Islands = append(ck.Islands, snap)
	}
	refs := make([]uint64, len(o.evals))
	anyRef := false
	for i, ev := range o.evals {
		refs[i] = math.Float64bits(math.Inf(1))
		if sr, ok := ev.(scRefEvaluator); ok {
			refs[i] = math.Float64bits(sr.ShortCircuitRef())
			anyRef = true
		}
	}
	if anyRef {
		ck.EvalSCRefBits = refs
	}
	// The Truncate fault class simulates a torn write: the serialized
	// snapshot is truncated before the rename, as if the process (or
	// disk) died mid-flush without the filesystem noticing. The site
	// hash is the generation number, so the same fault seed tears the
	// same checkpoints on every run.
	tear := o.cfg.Faults.Hit(faultinject.Truncate, checkpointSite(o.gen))
	if err := writeFileAtomic(o.cfg.CheckpointPath, ck, tear); err != nil {
		return err
	}
	o.tele.checkpointWritten(o.gen, o.cfg.CheckpointPath)
	return nil
}

// checkpointSite is the fault-injection site hash of the generation-g
// checkpoint write.
func checkpointSite(g int) uint64 {
	return faultinject.HashString("orchestrator.checkpoint") ^ uint64(g)
}

// writeFileAtomic serializes v as indented JSON into a temp file in path's
// directory, fsyncs it, rotates any existing file at path to
// BackupPath(path), and renames the temp file over path. With tear set
// (fault injection only), the temp file is truncated to half its length
// before the rename, simulating a torn write that produces a garbled
// primary checkpoint while the rotated backup stays intact.
func writeFileAtomic(path string, v any, tear bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("orchestrator: checkpoint: %v", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("orchestrator: checkpoint %s: %v", path, err)
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if tear {
		if fi, err := tmp.Stat(); err == nil {
			_ = tmp.Truncate(fi.Size() / 2)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("orchestrator: checkpoint %s: %v", path, err)
	}
	// Keep the previous checkpoint as the last-good fallback. Best
	// effort: a missing previous file is the common first-checkpoint
	// case, and a failed rotation must not block the fresh write.
	if _, err := os.Stat(path); err == nil {
		_ = os.Rename(path, BackupPath(path))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("orchestrator: checkpoint %s: %v", path, err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file without restoring it
// into any engine (inspection, tests). A truncated, corrupted, or
// version-mismatched file yields a descriptive error, never a panic.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: checkpoint %s: %v", path, err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(blob, &ck); err != nil {
		return nil, fmt.Errorf("orchestrator: checkpoint %s is corrupted or truncated: %v", path, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("orchestrator: checkpoint %s has version %d; this build supports %d",
			path, ck.Version, CheckpointVersion)
	}
	if len(ck.Islands) == 0 {
		return nil, fmt.Errorf("orchestrator: checkpoint %s has no islands", path)
	}
	return &ck, nil
}

// Resume restores a checkpoint written by this configuration into the
// freshly constructed islands. It must be called before Run; Run then
// continues from the checkpointed generation. The determinism contract
// requires the Config to be identical to the one that wrote the checkpoint
// (enforced via the stored digest).
//
// Corruption recovery: when the primary file is unreadable, truncated, or
// garbled, Resume falls back to the last-good backup at BackupPath(path)
// (rotated by every checkpoint write), emitting a "checkpoint_fallback"
// telemetry record instead of aborting the run. Only when both files are
// unusable does Resume fail. A config-digest mismatch is an operator
// error, never recovered from the backup.
func (o *Orchestrator) Resume(path string) error {
	if o.resumed {
		return fmt.Errorf("orchestrator: already resumed")
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		bak := BackupPath(path)
		bck, berr := LoadCheckpoint(bak)
		if berr != nil {
			return fmt.Errorf("%w (last-good fallback failed too: %v)", err, berr)
		}
		o.tele.checkpointFallback(path, bak, bck.Gen, err.Error())
		ck = bck
	}
	if got, want := ck.Config, o.digest(); got != want {
		return fmt.Errorf("orchestrator: checkpoint %s was written by a different configuration: %+v, this run is %+v",
			path, got, want)
	}
	if len(ck.Islands) != len(o.engines) {
		return fmt.Errorf("orchestrator: checkpoint %s has %d islands, this run has %d",
			path, len(ck.Islands), len(o.engines))
	}
	for i, snap := range ck.Islands {
		if err := o.engines[i].Restore(snap); err != nil {
			return fmt.Errorf("orchestrator: checkpoint %s: island %d: %v", path, i, err)
		}
		if snap.Gen != ck.Gen {
			return fmt.Errorf("orchestrator: checkpoint %s: island %d paused at generation %d, run at %d",
				path, i, snap.Gen, ck.Gen)
		}
	}
	for i, ev := range o.evals {
		if sr, ok := ev.(scRefEvaluator); ok && i < len(ck.EvalSCRefBits) {
			sr.SetShortCircuitRef(math.Float64frombits(ck.EvalSCRefBits[i]))
		}
	}
	o.gen = ck.Gen
	o.migs = ck.Migrations
	o.resumed = true
	return nil
}
