package orchestrator

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"

	"gmr/internal/evalx"
	"gmr/internal/faultinject"
	"gmr/internal/gp"
)

// The telemetry stream is JSON Lines: one self-describing record per line,
// distinguished by the "type" field. Records of type "gen" and "migration"
// are deterministic (no wall-clock fields), so two runs of the same Config
// produce byte-identical streams — the property the checkpoint/resume
// determinism test asserts. Two exceptions: "run_start", "checkpoint", and
// "run_end" may carry timestamps and paths, and the optional "cache" field
// of "gen" records reports the live evaluator's per-process counters, which
// restart from zero on resume (observability, not run state).
//
//	{"type":"run_start","islands":4,"generations":60,...}
//	{"type":"gen","island":0,"gen":12,"best_fitness":0.41,...,"cache":{...}}
//	{"type":"migration","gen":15,"from":0,"to":1,"count":2,...}
//	{"type":"checkpoint","gen":20,"path":"run.ckpt"}
//	{"type":"run_end","generations":60,"best_island":2,...}

// jsonFloat marshals non-finite values as null (plain JSON numbers cannot
// represent ±Inf/NaN; a fresh island's best fitness is +Inf until a finite
// model appears).
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

type runStartRecord struct {
	Type           string `json:"type"`
	Time           string `json:"time,omitempty"`
	Islands        int    `json:"islands"`
	Generations    int    `json:"generations"`
	MigrationEvery int    `json:"migration_every"`
	Migrants       int    `json:"migrants"`
	Seed           int64  `json:"seed"`
	StartGen       int    `json:"start_gen"`
	Resumed        bool   `json:"resumed"`
}

type genRecord struct {
	Type        string    `json:"type"`
	Island      int       `json:"island"`
	Gen         int       `json:"gen"`
	BestFitness jsonFloat `json:"best_fitness"`
	MeanFitness jsonFloat `json:"mean_fitness"`
	BestSize    int       `json:"best_size"`
	Evaluations int       `json:"evaluations"`
	// Quarantines is the engine's cumulative count of evaluations
	// recovered from a panic (omitted when zero, keeping fault-free
	// streams byte-identical to the previous format). Like the cache
	// counters, it is per-process observability and restarts from zero
	// on resume.
	Quarantines int64           `json:"quarantines,omitempty"`
	Cache       *evalx.Snapshot `json:"cache,omitempty"`
}

type migrationRecord struct {
	Type        string    `json:"type"`
	Gen         int       `json:"gen"`
	From        int       `json:"from"`
	To          int       `json:"to"`
	Count       int       `json:"count"`
	MigrantBest jsonFloat `json:"migrant_best"`
}

type checkpointRecord struct {
	Type string `json:"type"`
	Gen  int    `json:"gen"`
	Path string `json:"path"`
}

type runEndRecord struct {
	Type        string    `json:"type"`
	Generations int       `json:"generations"`
	BestIsland  int       `json:"best_island"`
	BestFitness jsonFloat `json:"best_fitness"`
	Migrations  int       `json:"migrations"`
	Interrupted bool      `json:"interrupted"`
	// Quarantines totals panic-recovered evaluations across all islands.
	Quarantines int64 `json:"quarantines,omitempty"`
	// Faults is the fault injector's final injection tally, present only
	// when injection was enabled for the run.
	Faults *faultinject.Snapshot `json:"faults,omitempty"`
}

// checkpointFallbackRecord reports that Resume recovered from a corrupted
// primary checkpoint by falling back to the last-good backup.
type checkpointFallbackRecord struct {
	Type   string `json:"type"`
	Path   string `json:"path"`
	Backup string `json:"backup"`
	Gen    int    `json:"gen"`
	Error  string `json:"error"`
}

// telemetry serializes records onto one writer. A nil writer disables the
// stream (every emit becomes a no-op).
type telemetry struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newTelemetry(w io.Writer) *telemetry {
	t := &telemetry{}
	if w != nil {
		t.enc = json.NewEncoder(w) // Encode appends '\n': JSONL for free
	}
	return t
}

func (t *telemetry) emit(v any) {
	if t.enc == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Telemetry is advisory: an encoding error (closed pipe, full disk)
	// must not abort the run that the stream merely observes.
	_ = t.enc.Encode(v)
}

func (t *telemetry) runStart(cfg Config, startGen int, resumed bool) {
	t.emit(runStartRecord{
		Type:           "run_start",
		Time:           time.Now().UTC().Format(time.RFC3339),
		Islands:        cfg.Islands,
		Generations:    cfg.GP.MaxGen,
		MigrationEvery: cfg.MigrationEvery,
		Migrants:       cfg.Migrants,
		Seed:           cfg.GP.Seed,
		StartGen:       startGen,
		Resumed:        resumed,
	})
}

func (t *telemetry) generation(island int, s gp.GenStats, quarantines int64, cache *evalx.Snapshot) {
	t.emit(genRecord{
		Type:        "gen",
		Island:      island,
		Gen:         s.Gen,
		BestFitness: jsonFloat(s.BestFitness),
		MeanFitness: jsonFloat(s.MeanFitness),
		BestSize:    s.BestSize,
		Evaluations: s.Evaluations,
		Quarantines: quarantines,
		Cache:       cache,
	})
}

func (t *telemetry) migration(gen, from, to, count int, migrantBest float64) {
	t.emit(migrationRecord{
		Type:        "migration",
		Gen:         gen,
		From:        from,
		To:          to,
		Count:       count,
		MigrantBest: jsonFloat(migrantBest),
	})
}

func (t *telemetry) checkpointWritten(gen int, path string) {
	t.emit(checkpointRecord{Type: "checkpoint", Gen: gen, Path: path})
}

func (t *telemetry) runEnd(res *Result, quarantines int64, faults *faultinject.Snapshot) {
	rec := runEndRecord{
		Type:        "run_end",
		Generations: res.Generations,
		BestIsland:  res.BestIsland,
		Migrations:  res.Migrations,
		Interrupted: res.Interrupted,
		Quarantines: quarantines,
		Faults:      faults,
	}
	if res.Best != nil {
		rec.BestFitness = jsonFloat(res.Best.Fitness)
	}
	t.emit(rec)
}

func (t *telemetry) checkpointFallback(path, backup string, gen int, errMsg string) {
	t.emit(checkpointFallbackRecord{
		Type:   "checkpoint_fallback",
		Path:   path,
		Backup: backup,
		Gen:    gen,
		Error:  errMsg,
	})
}
