package orchestrator

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gmr/internal/faultinject"
	"gmr/internal/gp"
)

// chaosEvaluator wraps valueEvaluator with deterministic, content-keyed
// fault injection: Panic hits panic mid-evaluation (exercising the engine's
// quarantine path), NaN hits poison the fitness to +Inf exactly the way
// evalx quarantines a non-finite simulation. Decisions are pure functions
// of (fault seed, individual content), so runs with the same fault seed are
// bitwise-reproducible regardless of worker count, island scheduling, or
// resume point.
type chaosEvaluator struct {
	valueEvaluator
	inj *faultinject.Injector
}

func (c *chaosEvaluator) site(ind *gp.Individual) uint64 {
	derived, err := ind.Deriv.Derive()
	if err != nil {
		return faultinject.HashFloats(0, ind.Params)
	}
	return faultinject.HashFloats(faultinject.HashString(derived.String()), ind.Params)
}

func (c *chaosEvaluator) Evaluate(ind *gp.Individual) {
	h := c.site(ind)
	if c.inj.Hit(faultinject.Panic, h) {
		panic(faultinject.InjectedPanic{Site: "orchestrator.test", Hash: h})
	}
	if c.inj.Hit(faultinject.NaN, h) {
		ind.Fitness = math.Inf(1) // evalx quarantines NaN poison to +Inf
		ind.Evaluated = true
		ind.FullEval = true
		return
	}
	c.valueEvaluator.Evaluate(ind)
}

// chaosConfig is testConfig with fault injection threaded through both the
// evaluators (panic + NaN poison) and the orchestrator (checkpoint
// truncation, when the spec asks for it).
func chaosConfig(t *testing.T, seed int64, maxGen int, spec string) Config {
	t.Helper()
	inj, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(seed, maxGen)
	cfg.Faults = inj
	cfg.NewEvaluator = func(int) gp.Evaluator {
		return &chaosEvaluator{valueEvaluator: valueEvaluator{target: 7.25}, inj: inj}
	}
	return cfg
}

// TestChaosRunCompletesAndIsDeterministic: a 4-island run where ~5% of
// evaluations panic and ~5% are NaN-poisoned still completes, quarantines
// at least one evaluation, never promotes a quarantined individual, and is
// bitwise-deterministic: a second run with the same fault seed produces
// byte-identical deterministic telemetry and a bit-equal best individual.
func TestChaosRunCompletesAndIsDeterministic(t *testing.T) {
	const spec = "seed=23,panic:0.05,nan:0.05"
	run := func() (*Result, []string, *faultinject.Snapshot) {
		var tele bytes.Buffer
		cfg := chaosConfig(t, 42, 8, spec)
		cfg.Telemetry = &tele
		o, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := o.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Interrupted || res.Generations != 8 {
			t.Fatalf("chaos run: interrupted=%v generations=%d, want complete 8",
				res.Interrupted, res.Generations)
		}
		if math.IsInf(res.Best.Fitness, 1) || math.IsNaN(res.Best.Fitness) {
			t.Fatalf("chaos best fitness = %v; quarantined individuals must never win", res.Best.Fitness)
		}
		return res, deterministicLines(t, tele.Bytes(), -1), cfg.Faults.Snapshot()
	}
	resA, linesA, snapA := run()
	resB, linesB, _ := run()

	if snapA.Panics == 0 && snapA.NaNs == 0 {
		t.Fatal("chaos spec injected nothing (suspicious)")
	}
	if math.Float64bits(resA.Best.Fitness) != math.Float64bits(resB.Best.Fitness) {
		t.Fatalf("best fitness differs across identical chaos runs: %v vs %v",
			resA.Best.Fitness, resB.Best.Fitness)
	}
	if len(linesA) != len(linesB) {
		t.Fatalf("telemetry line count differs: %d vs %d", len(linesA), len(linesB))
	}
	for i := range linesA {
		if linesA[i] != linesB[i] {
			t.Errorf("telemetry line %d differs:\nrun A %s\nrun B %s", i, linesA[i], linesB[i])
		}
	}
}

// TestChaosResumeMatchesContinuous: under the same fault seed, a chaos run
// interrupted at the halfway barrier and resumed from its checkpoint
// produces a best individual bit-identical to the continuous chaos run.
// (Telemetry quarantine counters are per-process and restart on resume, so
// this test compares final results, not telemetry bytes.)
func TestChaosResumeMatchesContinuous(t *testing.T) {
	const (
		spec = "seed=23,panic:0.05,nan:0.05"
		G    = 8
	)

	contCfg := chaosConfig(t, 42, G, spec)
	contOrch, err := New(contCfg)
	if err != nil {
		t.Fatal(err)
	}
	contRes, err := contOrch.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tee := &cancelAtGen{target: G / 2, cancel: cancel}
	halfCfg := chaosConfig(t, 42, G, spec)
	halfCfg.CheckpointPath = ckPath
	halfCfg.Telemetry = tee
	halfOrch, err := New(halfCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := halfOrch.Run(ctx); err != nil {
		t.Fatal(err)
	}

	resCfg := chaosConfig(t, 42, G, spec)
	resOrch, err := New(resCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resOrch.Resume(ckPath); err != nil {
		t.Fatal(err)
	}
	resRes, err := resOrch.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got, want := math.Float64bits(resRes.Best.Fitness), math.Float64bits(contRes.Best.Fitness); got != want {
		t.Errorf("best fitness differs: resumed %x (%v) vs continuous %x (%v)",
			got, resRes.Best.Fitness, want, contRes.Best.Fitness)
	}
	if got, want := resRes.Best.Deriv.String(), contRes.Best.Deriv.String(); got != want {
		t.Errorf("best derivation differs:\nresumed    %s\ncontinuous %s", got, want)
	}
	for i := range resRes.Best.Params {
		if math.Float64bits(resRes.Best.Params[i]) != math.Float64bits(contRes.Best.Params[i]) {
			t.Errorf("best param %d differs: %v vs %v", i, resRes.Best.Params[i], contRes.Best.Params[i])
		}
	}
	if resRes.BestIsland != contRes.BestIsland {
		t.Errorf("best island differs: %d vs %d", resRes.BestIsland, contRes.BestIsland)
	}
}

// TestCheckpointBackupRotation: with a per-generation cadence, the writer
// rotates the previous checkpoint to .bak before installing the new one,
// and both files load.
func TestCheckpointBackupRotation(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	cfg := testConfig(5, 4)
	cfg.CheckpointPath = ckPath
	cfg.CheckpointEvery = 1
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("primary checkpoint unreadable: %v", err)
	}
	bak, err := LoadCheckpoint(BackupPath(ckPath))
	if err != nil {
		t.Fatalf("backup checkpoint unreadable: %v", err)
	}
	if bak.Gen >= ck.Gen {
		t.Errorf("backup gen %d is not older than primary gen %d", bak.Gen, ck.Gen)
	}
}

// TestResumeFallsBackToBackup: when the primary checkpoint is corrupt but a
// healthy .bak exists, Resume recovers from the backup, emits a
// checkpoint_fallback telemetry record, and the run completes its budget.
func TestResumeFallsBackToBackup(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	cfg := testConfig(5, 6)
	cfg.CheckpointPath = ckPath
	cfg.CheckpointEvery = 1
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Corrupt the primary the way a torn write would: cut it in half.
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var tele bytes.Buffer
	cfg2 := testConfig(5, 6)
	cfg2.Telemetry = &tele
	o2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.Resume(ckPath); err != nil {
		t.Fatalf("Resume did not fall back to %s: %v", BackupPath(ckPath), err)
	}
	var rec struct {
		Type   string `json:"type"`
		Backup string `json:"backup"`
		Error  string `json:"error"`
	}
	line := strings.TrimSpace(tele.String())
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("bad fallback telemetry %q: %v", line, err)
	}
	if rec.Type != "checkpoint_fallback" || rec.Backup != BackupPath(ckPath) || rec.Error == "" {
		t.Errorf("fallback record = %+v, want type=checkpoint_fallback backup=%s with an error",
			rec, BackupPath(ckPath))
	}
	res, err := o2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted || res.Generations != 6 {
		t.Errorf("recovered run: interrupted=%v generations=%d, want complete 6",
			res.Interrupted, res.Generations)
	}
}

// TestResumeBothCorruptFails: when the primary and the backup are both
// unreadable, Resume reports a combined error naming the fallback failure.
func TestResumeBothCorruptFails(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	if err := os.WriteFile(ckPath, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(BackupPath(ckPath), []byte("also torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := New(testConfig(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	err = o.Resume(ckPath)
	if err == nil {
		t.Fatal("Resume accepted a run with both checkpoint copies corrupt")
	}
	if !strings.Contains(err.Error(), "fallback") {
		t.Errorf("error %q does not mention the failed fallback", err)
	}
}

// TestTruncationFaultTearsPrimary: with trunc:1, every checkpoint write is
// torn in half before the atomic rename, so the primary never parses; the
// injector tallies the truncations.
func TestTruncationFaultTearsPrimary(t *testing.T) {
	inj, err := faultinject.Parse("seed=7,trunc:1")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	cfg := testConfig(5, 3)
	cfg.CheckpointPath = ckPath
	cfg.CheckpointEvery = 1
	cfg.Faults = inj
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(ckPath); err == nil {
		t.Error("trunc:1 left a parseable primary checkpoint")
	}
	if s := inj.Snapshot(); s.Truncations == 0 {
		t.Error("trunc:1 tallied no truncations")
	}
}
