package orchestrator

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"gmr/internal/obs"
)

// TestObsRegistryAndRecords covers the observability opt-in: with
// Config.Obs attached the registry exposes per-island progress series and
// the telemetry stream carries one "obs" snapshot record per generation;
// without it the stream contains no such records, preserving the
// byte-identical-telemetry contract for existing configurations.
func TestObsRegistryAndRecords(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{Ring: 64})
	tracer.RegisterMetrics(reg)

	var buf bytes.Buffer
	cfg := testConfig(11, 3)
	cfg.Telemetry = &buf
	cfg.Obs = reg
	cfg.Tracer = tracer
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 3 {
		t.Fatalf("generations = %d", res.Generations)
	}

	// The registry serves one valid exposition with per-island series.
	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.Bytes()
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, series := range []string{
		`gmr_gp_generation{island="0"} 3`,
		`gmr_gp_generation{island="3"} 3`,
		`gmr_gp_best_fitness{island="0"}`,
		`gmr_gp_evaluations_total{island="2"}`,
		`gmr_obs_spans_recorded_total`,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("exposition missing %s", series)
		}
	}

	// Orchestration spans were recorded (orch.generation at minimum).
	names := map[string]bool{}
	for _, sp := range tracer.Snapshot() {
		names[sp.Name] = true
	}
	for _, want := range []string{"orch.generation", "orch.migrate", "gp.variation", "gp.evaluate"} {
		if !names[want] {
			t.Errorf("no %s span recorded (got %v)", want, names)
		}
	}

	// One "obs" record per emitGenRecords call: generation 0 plus each
	// stepped generation, with the registry snapshot embedded.
	var obsRecs []obsRecord
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.Contains(line, `"type":"obs"`) {
			continue
		}
		var rec obsRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("obs record %q: %v", line, err)
		}
		obsRecs = append(obsRecs, rec)
	}
	if len(obsRecs) != 4 {
		t.Fatalf("obs records = %d, want 4 (gen 0..3)", len(obsRecs))
	}
	last := obsRecs[len(obsRecs)-1]
	if last.Gen != 3 {
		t.Fatalf("last obs record gen = %d", last.Gen)
	}
	if v := last.Metrics[`gmr_gp_generation{island="0"}`]; v != 3 {
		t.Fatalf("snapshot gmr_gp_generation{island=0} = %v, want 3", v)
	}

	// Control: the same run without Obs emits no obs records.
	var plain bytes.Buffer
	cfg2 := testConfig(11, 3)
	cfg2.Telemetry = &plain
	o2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), `"type":"obs"`) {
		t.Fatal("obs records emitted without Config.Obs")
	}
}
