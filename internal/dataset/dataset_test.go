package dataset

import (
	"bytes"
	"math"
	"testing"

	"gmr/internal/bio"
	"gmr/internal/stats"
)

func genSmall(t *testing.T) *Dataset {
	t.Helper()
	d, err := Generate(Config{Seed: 1, StartYear: 2000, EndYear: 2003, TrainEndYear: 2002})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateShape(t *testing.T) {
	d := genSmall(t)
	wantDays := 366 + 365 + 365 + 365 // 2000 is a leap year
	if d.Days != wantDays {
		t.Errorf("Days = %d, want %d", d.Days, wantDays)
	}
	if d.TrainEnd != 366+365+365 {
		t.Errorf("TrainEnd = %d, want %d", d.TrainEnd, 366+365+365)
	}
	if len(d.Forcing) != d.Days || len(d.ObsPhy) != d.Days || len(d.Dates) != d.Days {
		t.Error("series lengths disagree with Days")
	}
	if len(d.Forcing[0]) != bio.NumVars {
		t.Errorf("forcing width = %d, want %d", len(d.Forcing[0]), bio.NumVars)
	}
	if d.Dates[0] != "2000-01-01" || d.Dates[d.Days-1] != "2003-12-31" {
		t.Errorf("date range %s..%s", d.Dates[0], d.Dates[d.Days-1])
	}
	if len(d.StationRaw) != 9 {
		t.Errorf("StationRaw has %d stations, want 9", len(d.StationRaw))
	}
	if got := len(d.TrainForcing()) + len(d.TestForcing()); got != d.Days {
		t.Errorf("train+test = %d days, want %d", got, d.Days)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := genSmall(t)
	b := genSmall(t)
	for i := range a.ObsPhy {
		if a.ObsPhy[i] != b.ObsPhy[i] {
			t.Fatalf("day %d: same seed produced different data", i)
		}
	}
	c, err := Generate(Config{Seed: 2, StartYear: 2000, EndYear: 2003, TrainEndYear: 2002})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.ObsPhy {
		if a.ObsPhy[i] != c.ObsPhy[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGeneratedValuesPlausible(t *testing.T) {
	d := genSmall(t)
	vi := bio.VarIndex()
	for day, row := range d.Forcing {
		checks := []struct {
			name   string
			lo, hi float64
		}{
			{"Vtmp", -5, 40},
			{"Vlgt", 0, 60},
			{"Vn", 0, 20},
			{"Vp", 0, 1},
			{"Vsi", 0, 30},
			{"Vdo", 0, 25},
			{"Vph", 5, 11},
			{"Valk", 0, 20},
			{"Vcd", 0, 15},
			{"Vsd", 0, 6},
		}
		for _, c := range checks {
			v := row[vi[c.name]]
			if math.IsNaN(v) || v < c.lo || v > c.hi {
				t.Fatalf("day %d: %s = %v outside [%v, %v]", day, c.name, v, c.lo, c.hi)
			}
		}
	}
	for day, p := range d.TruePhy {
		if p < 0.999 || p > 220.001 {
			t.Fatalf("day %d: TruePhy %v outside generator clamp", day, p)
		}
	}
	for day, p := range d.ObsPhy {
		if p <= 0 || math.IsNaN(p) || p > 500 {
			t.Fatalf("day %d: ObsPhy %v implausible", day, p)
		}
	}
}

func TestSeasonalityPresent(t *testing.T) {
	d := genSmall(t)
	vi := bio.VarIndex()
	// Mean summer temperature must exceed mean winter temperature by a
	// wide margin.
	var summer, winter []float64
	for day := 0; day < d.Days; day++ {
		doy := day % 365
		v := d.Forcing[day][vi["Vtmp"]]
		switch {
		case doy > 180 && doy < 240:
			summer = append(summer, v)
		case doy < 45 || doy > 340:
			winter = append(winter, v)
		}
	}
	if stats.Mean(summer)-stats.Mean(winter) < 10 {
		t.Errorf("seasonal temperature contrast too small: summer %v winter %v",
			stats.Mean(summer), stats.Mean(winter))
	}
	// Biomass must actually vary (blooms) — coefficient of variation
	// above 0.5.
	cv := stats.StdDev(d.TruePhy) / stats.Mean(d.TruePhy)
	if cv < 0.5 {
		t.Errorf("TruePhy CV = %v; expected bloom dynamics", cv)
	}
}

func TestInterpolationRegime(t *testing.T) {
	// Weekly-interpolated series must be piecewise linear between
	// sampled days.
	xs := []float64{0, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100, 1200, 1300, 1400}
	out := interpolateSampled(xs, 7)
	if out[0] != 0 || out[7] != 700 || out[14] != 1400 {
		t.Fatalf("sampled anchors changed: %v", out)
	}
	for j := 1; j < 7; j++ {
		want := float64(j) * 100
		if math.Abs(out[j]-want) > 1e-9 {
			t.Errorf("interpolated day %d = %v, want %v", j, out[j], want)
		}
	}
	// step<=1 must copy.
	same := interpolateSampled(xs, 1)
	for i := range xs {
		if same[i] != xs[i] {
			t.Fatal("step=1 should be identity")
		}
	}
}

func TestObservationNoiseApplied(t *testing.T) {
	d := genSmall(t)
	// Observations differ from truth on sampled days (noise), but are
	// correlated overall.
	diffs := 0
	for i := range d.ObsPhy {
		if math.Abs(d.ObsPhy[i]-d.TruePhy[i]) > 1e-9 {
			diffs++
		}
	}
	if diffs < d.Days/2 {
		t.Errorf("only %d/%d observed days differ from truth", diffs, d.Days)
	}
	if r := stats.Pearson(d.ObsPhy, d.TruePhy); r < 0.8 {
		t.Errorf("obs/truth correlation = %v, want > 0.8", r)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := genSmall(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Days != d.Days || back.TrainEnd != d.TrainEnd {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", back.Days, back.TrainEnd, d.Days, d.TrainEnd)
	}
	for i := 0; i < d.Days; i++ {
		if math.Abs(back.ObsPhy[i]-d.ObsPhy[i]) > 1e-6*math.Abs(d.ObsPhy[i]) {
			t.Fatalf("day %d: ObsPhy %v vs %v", i, back.ObsPhy[i], d.ObsPhy[i])
		}
		for k := range d.Forcing[i] {
			if math.Abs(back.Forcing[i][k]-d.Forcing[i][k]) > 1e-6*(1+math.Abs(d.Forcing[i][k])) {
				t.Fatalf("day %d col %d: %v vs %v", i, k, back.Forcing[i][k], d.Forcing[i][k])
			}
		}
		if back.Dates[i] != d.Dates[i] {
			t.Fatalf("day %d: date %s vs %s", i, back.Dates[i], d.Dates[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b,c\n1,2,3\n")); err == nil {
		t.Error("wrong header accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, StartYear: 2005, EndYear: 2004, TrainEndYear: 2005}); err == nil {
		t.Error("inverted period accepted")
	}
	if _, err := Generate(Config{Seed: 1, StartYear: 2000, EndYear: 2003, TrainEndYear: 2003}); err == nil {
		t.Error("train end == period end accepted (no test data)")
	}
}

// TestTruthIsRevisedManual verifies the generating process differs from the
// manual process in exactly the documented ways: it references Valk, Vph,
// Vcd (the pH/alkalinity term) and makes δZoo temperature-dependent.
func TestTruthIsRevisedManual(t *testing.T) {
	phy := TruthPhyDeriv()
	vars := map[string]bool{}
	for _, v := range phy.Vars() {
		vars[v] = true
	}
	if !vars["Vph"] {
		t.Error("truth dBPhy/dt missing the discovered pH dependence")
	}
	zoo := TruthZooDeriv()
	zvars := map[string]bool{}
	for _, v := range zoo.Vars() {
		zvars[v] = true
	}
	if !zvars["Vtmp"] {
		t.Error("truth dBZoo/dt missing temperature-dependent mortality")
	}
	// The manual process must NOT contain these revisions.
	mvars := map[string]bool{}
	for _, v := range bio.PhyDeriv().Vars() {
		mvars[v] = true
	}
	if mvars["Vph"] {
		t.Error("manual process already contains the hidden pH revision")
	}
}
