// Package dataset synthesizes the Nakdong-River-style monitoring dataset
// used by the case study. The paper's dataset (13 years of measurements at
// nine stations, 1996–2008) is not publicly distributable, so this package
// generates a statistically analogous stand-in (DESIGN.md §3): seasonal
// meteorology and monsoon rainfall drive per-station water chemistry, the
// hydrological process of Appendix A routes and mixes water bodies to
// station S1, and a hidden "true" biological process — the manual model of
// equations (1) and (2) plus the revisions the paper reports discovering
// (a pH/alkalinity/conductivity production term on dBPhy/dt and a
// temperature-dependent zooplankton mortality, cf. equations (7), (8)) —
// generates phytoplankton biomass. Observations are subsampled to the
// paper's measurement regime (weekly nutrients and chlorophyll-a, linearly
// interpolated) and corrupted with noise.
package dataset

import (
	"fmt"
	"math"
	"time"

	"gmr/internal/bio"
	"gmr/internal/expr"
	"gmr/internal/river"
	"gmr/internal/stats"
)

// Config controls synthesis.
type Config struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// StartYear and EndYear bound the daily series (inclusive); zero
	// values mean the paper's 1996 and 2008.
	StartYear, EndYear int
	// TrainEndYear is the last training year (inclusive); zero means the
	// paper's 2005 (training 1996–2005, test 2006–2008).
	TrainEndYear int
	// ObsNoise is the multiplicative lognormal observation noise sigma
	// on biomass; zero means 0.12.
	ObsNoise float64
	// SampleEvery is the measurement interval in days for nutrients and
	// chlorophyll-a at S1 (linearly interpolated in between); zero means
	// the paper's weekly 7.
	SampleEvery int
}

func (c Config) withDefaults() Config {
	if c.StartYear == 0 {
		c.StartYear = 1996
	}
	if c.EndYear == 0 {
		c.EndYear = 2008
	}
	if c.TrainEndYear == 0 {
		c.TrainEndYear = 2005
	}
	if c.ObsNoise == 0 {
		c.ObsNoise = 0.12
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 7
	}
	return c
}

// Dataset is the generated study dataset at station S1 plus the raw
// per-station series used by the "-All" baseline variants.
type Dataset struct {
	// Days is the number of daily records.
	Days int
	// Dates holds the ISO date of each record.
	Dates []string
	// TrainEnd is the index of the first test day.
	TrainEnd int
	// Forcing is the model-visible S1 forcing: Forcing[t] is a
	// bio.NumVars-wide vector in bio.VarIndex layout. Columns 0 and 1
	// carry the observed BPhy and BZoo for reference; the simulator
	// overrides them with model state.
	Forcing [][]float64
	// TrueForcing is the noise-free daily forcing that generated the
	// truth (no subsampling/interpolation). Used only by diagnostics.
	TrueForcing [][]float64
	// ObsPhy and ObsZoo are the observed (noisy, interpolated) biomasses
	// at S1 — the modeling targets.
	ObsPhy, ObsZoo []float64
	// TruePhy and TrueZoo are the noise-free generated biomasses.
	TruePhy, TrueZoo []float64
	// StationRaw maps each real station name to its local daily series
	// of the ten temporal variables (bio.Variables order).
	StationRaw map[string][][]float64
	// TruthConstants records the hidden parameter vector used by the
	// generating process (bio.DefaultConstants order), for diagnostics.
	TruthConstants []float64
}

// TruthPhyDeriv returns the hidden revised dBPhy/dt of the generating
// process: the manual equation (1) with a pH-linked modulation of the
// photosynthetic growth rate, µPhy + 0.06·(Vph − 7.2). This realizes the
// paper's finding that pH connects to the algal growth process (Section
// IV-E and equation (8)) as a rate-level revision at extension point Ext3,
// reachable through the Table II grammar (connector + with lexeme Vph, then
// extenders − and ×).
func TruthPhyDeriv() *expr.Node {
	phy := bio.PhyDeriv()
	phy.Walk(func(n *expr.Node) bool {
		if n.Sym == "Ext3" {
			rev := expr.Add(n.Clone(),
				expr.Mul(expr.NewLit(0.06), expr.Sub(expr.NewVar("Vph"), expr.NewLit(7.2))))
			rev.Sym = "Ext3"
			*n = *rev
			return false
		}
		return true
	})
	return phy
}

// TruthZooDeriv returns the hidden revised dBZoo/dt: the manual equation
// (2) with temperature-dependent zooplankton mortality replacing the
// constant CDZ — CDZ·(0.05·Vtmp + 0.3) — analogous to the paper's
// discovered equation (7), reachable at extension point Ext9.
func TruthZooDeriv() *expr.Node {
	zoo := bio.ZooDeriv()
	zoo.Walk(func(n *expr.Node) bool {
		if n.Sym == "Ext9" {
			rev := expr.Mul(expr.NewParam("CDZ"),
				expr.Add(expr.Mul(expr.NewLit(0.05), expr.NewVar("Vtmp")), expr.NewLit(0.3)))
			rev.Sym = "Ext9"
			*n = *rev
			return false
		}
		return true
	})
	return zoo
}

// TruthParams returns the hidden constant-parameter vector of the
// generating process: Table III means with a stable, bloom-forming
// parameterization (tamed growth, sharper thermal niche, stronger grazing,
// summer-limiting phosphorus half-saturation).
func TruthParams(consts []bio.Constant) []float64 {
	params := bio.Means(consts)
	pi := bio.ParamIndex(consts)
	set := func(k string, v float64) { params[pi[k]] = v }
	set("CUA", 0.82)
	set("CBRA", 0.16)
	set("CPT", 0.045)
	set("CMFR", 0.7)
	set("CUZ", 0.28)
	set("CBRZ", 0.06)
	set("CDZ", 0.05)
	set("CP", 0.015)
	return params
}

// BiomassFloor and BiomassCap bound both state variables in the generating
// process and in every model evaluation. The cap plays the role of the
// self-shading/washout limitation that the transported-forcing design
// cannot express (the process family of equations (1)–(2) has no
// density-dependent loss, so sustained µ>γ grows without bound); treating
// the bounds as part of the simulator specification keeps the comparison
// fair — every method, from MANUAL to GMR, runs under the same clamps.
const (
	BiomassFloor = 1.0
	BiomassCap   = 220.0
)

// TruthSimConfig is the integration configuration of the generating
// process.
func TruthSimConfig(phy0, zoo0 float64) bio.SimConfig {
	return ModelSimConfig(4, phy0, zoo0)
}

// ModelSimConfig is the shared simulation regime for evaluating any
// candidate process model against this dataset.
func ModelSimConfig(subSteps int, phy0, zoo0 float64) bio.SimConfig {
	return bio.SimConfig{
		SubSteps: subSteps,
		Phy0:     phy0, Zoo0: zoo0,
		ClampMin: BiomassFloor, ClampMax: BiomassCap,
	}
}

// chemistry attribute order used during routing (the transported subset of
// bio.Variables; Vlgt and Vtmp are local meteorology at S1).
var chemNames = []string{"Vn", "Vp", "Vsi", "Vdo", "Vcd", "Vph", "Valk", "Vsd"}

// Generate synthesizes a dataset.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRand(cfg.Seed)

	start := time.Date(cfg.StartYear, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(cfg.EndYear, 12, 31, 0, 0, 0, 0, time.UTC)
	days := int(end.Sub(start).Hours()/24) + 1
	if days <= 0 {
		return nil, fmt.Errorf("dataset: empty period %d–%d", cfg.StartYear, cfg.EndYear)
	}
	trainEnd := int(time.Date(cfg.TrainEndYear+1, 1, 1, 0, 0, 0, 0, time.UTC).Sub(start).Hours() / 24)
	if trainEnd <= 0 || trainEnd >= days {
		return nil, fmt.Errorf("dataset: train end year %d outside period", cfg.TrainEndYear)
	}

	dates := make([]string, days)
	dayOfYear := make([]float64, days)
	for d := 0; d < days; d++ {
		t := start.AddDate(0, 0, d)
		dates[d] = t.Format("2006-01-02")
		dayOfYear[d] = float64(t.YearDay())
	}

	// Regional weather: seasonal temperature and irradiance with AR(1)
	// weather noise, monsoon rainfall (summer-heavy storm process).
	season := func(d int) float64 { return math.Sin(2 * math.Pi * (dayOfYear[d] - 110) / 365) }
	airTmp := make([]float64, days)
	light := make([]float64, days)
	rain := make([]float64, days)
	arT, arL := 0.0, 0.0
	for d := 0; d < days; d++ {
		s := season(d)
		arT = 0.85*arT + rng.NormFloat64()*1.0
		arL = 0.7*arL + rng.NormFloat64()*2.0
		airTmp[d] = 14.5 + 11.5*s + arT
		light[d] = math.Max(1.5, 15+11*s+arL)
		// Storm process: summer monsoon raises both frequency and size.
		pStorm := 0.08 + 0.18*math.Max(0, s)
		if rng.Float64() < pStorm {
			rain[d] = rng.ExpFloat64() * (8 + 30*math.Max(0, s))
		}
	}

	// Per-station local chemistry. Tributaries are smaller and more
	// nutrient-enriched (agricultural catchments); the main channel
	// dilutes downstream.
	net := river.Nakdong()
	enrich := map[string]float64{
		"S6": 1.0, "S5": 0.95, "S4": 0.95, "S3": 0.9, "S2": 0.9, "S1": 0.85,
		"T1": 1.5, "T2": 1.6, "T3": 1.4,
	}
	in := &river.Inputs{
		Rain:     map[string][]float64{},
		Attr:     map[string][][]float64{},
		RainAttr: map[string][]float64{},
	}
	// Rain runoff carries enriched N/P (field washoff), dilute ions, and
	// high turbidity (low transparency).
	rainAttr := []float64{4.0, 0.12, 4.5, 9.0, 1.2, 7.3, 2.5, 0.3}
	stationOrder := []string{"S1", "S2", "S3", "S4", "S5", "S6", "T1", "T2", "T3"}
	for _, name := range stationOrder {
		e := enrich[name]
		srng := stats.Split(rng)
		attr := make([][]float64, days)
		for d := 0; d < days; d++ {
			s := season(d)
			wn := func(sd float64) float64 { return srng.NormFloat64() * sd }
			attr[d] = []float64{
				e * (2.5 + 0.3*wn(1)),                        // Vn
				math.Max(0.004, e*(0.05-0.04*s)+0.006*wn(1)), // Vp: summer drawdown
				e * (3 + 0.3*wn(1)),                          // Vsi
				10 - 3*s + 0.4*wn(1),                         // Vdo
				e * (3 + 0.8*s + 0.2*wn(1)),                  // Vcd
				8 + 0.5*s + 0.15*wn(1),                       // Vph
				e * (5 + 0.5*wn(1)),                          // Valk
				math.Max(0.2, 1.5-0.5*s+0.2*wn(1)),           // Vsd
			}
		}
		in.Attr[name] = attr
		in.Rain[name] = rain
		in.RainAttr[name] = rainAttr
	}
	routed, err := net.Route(in, days, len(chemNames))
	if err != nil {
		return nil, err
	}

	// Assemble the noise-free daily forcing at S1: routed chemistry plus
	// local meteorology. Water temperature tracks air temperature with
	// thermal inertia.
	vi := bio.VarIndex()
	trueForcing := make([][]float64, days)
	wTmp := airTmp[0]
	s1chem := routed.Attr["S1"]
	for d := 0; d < days; d++ {
		wTmp += 0.25 * (airTmp[d] - wTmp)
		row := make([]float64, bio.NumVars)
		row[vi["Vlgt"]] = light[d]
		row[vi["Vtmp"]] = math.Max(0.5, wTmp)
		for k, name := range chemNames {
			row[vi[name]] = s1chem[d][k]
		}
		trueForcing[d] = row
	}

	// Integrate the hidden true process over the noise-free forcing.
	consts := bio.DefaultConstants()
	pi := bio.ParamIndex(consts)
	truthPhy, truthZoo := TruthPhyDeriv(), TruthZooDeriv()
	if err := expr.Bind(truthPhy, vi, pi); err != nil {
		return nil, err
	}
	if err := expr.Bind(truthZoo, vi, pi); err != nil {
		return nil, err
	}
	truthSys, err := bio.NewCompiledSystem(truthPhy, truthZoo)
	if err != nil {
		return nil, err
	}
	params := TruthParams(consts)
	simCfg := TruthSimConfig(8, 1.5)
	truePhy := make([]float64, 0, days)
	trueZoo := make([]float64, 0, days)
	// Re-run capturing both states: Run reports BPhy; track BZoo via a
	// second pass of the same deterministic integration.
	type state struct{ phy, zoo float64 }
	states := make([]state, 0, days)
	{
		bphy, bzoo := simCfg.Phy0, simCfg.Zoo0
		scratch := make([]float64, bio.NumVars)
		h := 1.0 / float64(simCfg.SubSteps)
		for d := 0; d < days; d++ {
			copy(scratch, trueForcing[d])
			for stp := 0; stp < simCfg.SubSteps; stp++ {
				scratch[bio.IdxBPhy] = bphy
				scratch[bio.IdxBZoo] = bzoo
				dp := truthSys.Phy.Eval(scratch, params)
				dz := truthSys.Zoo.Eval(scratch, params)
				bphy = stats.Clamp(bphy+h*dp, simCfg.ClampMin, simCfg.ClampMax)
				bzoo = stats.Clamp(bzoo+h*dz, simCfg.ClampMin, simCfg.ClampMax)
			}
			states = append(states, state{bphy, bzoo})
		}
	}
	for _, s := range states {
		truePhy = append(truePhy, s.phy)
		trueZoo = append(trueZoo, s.zoo)
	}

	// Observation model: multiplicative lognormal noise, then the
	// paper's sampling regime — biomass and nutrients measured every
	// SampleEvery days at S1 and linearly interpolated in between.
	noisy := func(xs []float64, sigma float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = x * math.Exp(rng.NormFloat64()*sigma)
		}
		return out
	}
	obsPhy := interpolateSampled(noisy(truePhy, cfg.ObsNoise), cfg.SampleEvery)
	obsZoo := interpolateSampled(noisy(trueZoo, cfg.ObsNoise), cfg.SampleEvery)

	// Model-visible forcing: daily variables get mild sensor noise;
	// nutrients are subsampled and interpolated like the observations.
	forcing := make([][]float64, days)
	for d := 0; d < days; d++ {
		row := append([]float64(nil), trueForcing[d]...)
		row[bio.IdxBPhy] = obsPhy[d]
		row[bio.IdxBZoo] = obsZoo[d]
		forcing[d] = row
	}
	for _, nutrient := range []string{"Vn", "Vp", "Vsi"} {
		col := vi[nutrient]
		series := make([]float64, days)
		for d := 0; d < days; d++ {
			series[d] = trueForcing[d][col] * math.Exp(rng.NormFloat64()*0.05)
		}
		series = interpolateSampled(series, cfg.SampleEvery)
		for d := 0; d < days; d++ {
			forcing[d][col] = series[d]
		}
	}

	// Raw per-station series for the "-All" data-driven variants:
	// local chemistry plus shared meteorology, daily.
	stationRaw := map[string][][]float64{}
	for si, name := range stationOrder {
		raw := make([][]float64, days)
		attr := in.Attr[name]
		// Each station's meteorology differs slightly (latitude and
		// microclimate): a fixed offset plus independent weather noise,
		// so the -All feature matrices are full rank.
		srng := stats.Split(rng)
		tmpOff := 0.4 * float64(si-4)
		lgtOff := 0.3 * float64(si-4)
		for d := 0; d < days; d++ {
			row := make([]float64, len(bio.Variables()))
			// bio.Variables order: Vlgt Vn Vp Vsi Vtmp Vdo Vcd Vph Valk Vsd.
			row[0] = math.Max(0.5, light[d]+lgtOff+0.5*srng.NormFloat64())
			row[4] = airTmp[d] + tmpOff + 0.3*srng.NormFloat64()
			row[1], row[2], row[3] = attr[d][0], attr[d][1], attr[d][2]
			row[5], row[6], row[7], row[8], row[9] = attr[d][3], attr[d][4], attr[d][5], attr[d][6], attr[d][7]
			raw[d] = row
		}
		stationRaw[name] = raw
	}

	return &Dataset{
		Days:           days,
		Dates:          dates,
		TrainEnd:       trainEnd,
		Forcing:        forcing,
		TrueForcing:    trueForcing,
		ObsPhy:         obsPhy,
		ObsZoo:         obsZoo,
		TruePhy:        truePhy,
		TrueZoo:        trueZoo,
		StationRaw:     stationRaw,
		TruthConstants: params,
	}, nil
}

// interpolateSampled keeps every step-th value (and the final one) and
// linearly interpolates in between, emulating the paper's measurement
// regime for weekly/bi-weekly variables.
func interpolateSampled(xs []float64, step int) []float64 {
	if step <= 1 || len(xs) == 0 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, len(xs))
	prevIdx := 0
	out[0] = xs[0]
	for i := step; i < len(xs)+step; i += step {
		idx := i
		if idx >= len(xs) {
			idx = len(xs) - 1
		}
		if idx == prevIdx {
			break
		}
		for j := prevIdx + 1; j <= idx; j++ {
			frac := float64(j-prevIdx) / float64(idx-prevIdx)
			out[j] = xs[prevIdx] + frac*(xs[idx]-xs[prevIdx])
		}
		out[idx] = xs[idx]
		prevIdx = idx
	}
	return out
}

// Train/Test accessors.

// TrainForcing returns the training-period forcing rows (shared backing
// array; do not mutate).
func (d *Dataset) TrainForcing() [][]float64 { return d.Forcing[:d.TrainEnd] }

// TestForcing returns the test-period forcing rows.
func (d *Dataset) TestForcing() [][]float64 { return d.Forcing[d.TrainEnd:] }

// TrainObsPhy returns the training-period observed biomass.
func (d *Dataset) TrainObsPhy() []float64 { return d.ObsPhy[:d.TrainEnd] }

// TestObsPhy returns the test-period observed biomass.
func (d *Dataset) TestObsPhy() []float64 { return d.ObsPhy[d.TrainEnd:] }
