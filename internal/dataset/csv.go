package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"gmr/internal/bio"
)

// csvHeader is the column layout of the S1 CSV export: date, the ten
// temporal variables in bio.Variables order, observed and true biomasses,
// and the train/test split flag.
func csvHeader() []string {
	h := []string{"date"}
	for _, v := range bio.Variables() {
		h = append(h, v.Name)
	}
	return append(h, "obs_bphy", "obs_bzoo", "true_bphy", "true_bzoo", "split")
}

// WriteCSV writes the S1 series (forcing, observations, truth, split) as
// CSV. Per-station raw series are not included; regenerate them with
// Generate for the "-All" baselines.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader()); err != nil {
		return err
	}
	vi := bio.VarIndex()
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for t := 0; t < d.Days; t++ {
		rec := []string{d.Dates[t]}
		for _, v := range bio.Variables() {
			rec = append(rec, f(d.Forcing[t][vi[v.Name]]))
		}
		split := "train"
		if t >= d.TrainEnd {
			split = "test"
		}
		rec = append(rec, f(d.ObsPhy[t]), f(d.ObsZoo[t]), f(d.TruePhy[t]), f(d.TrueZoo[t]), split)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset previously written by WriteCSV. The returned
// Dataset has no StationRaw or TrueForcing series.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("dataset: CSV has no data rows")
	}
	want := csvHeader()
	if len(rows[0]) != len(want) {
		return nil, fmt.Errorf("dataset: CSV has %d columns, want %d", len(rows[0]), len(want))
	}
	for i, h := range want {
		if rows[0][i] != h {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, want %q", i, rows[0][i], h)
		}
	}
	vi := bio.VarIndex()
	d := &Dataset{Days: len(rows) - 1, TrainEnd: -1}
	for t, rec := range rows[1:] {
		vals := make([]float64, len(rec)-2)
		for i, s := range rec[1 : len(rec)-1] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %d: %v", t+2, i+1, err)
			}
			vals[i] = v
		}
		row := make([]float64, bio.NumVars)
		for i, v := range bio.Variables() {
			row[vi[v.Name]] = vals[i]
		}
		nv := len(bio.Variables())
		obsPhy, obsZoo := vals[nv], vals[nv+1]
		row[bio.IdxBPhy], row[bio.IdxBZoo] = obsPhy, obsZoo
		d.Dates = append(d.Dates, rec[0])
		d.Forcing = append(d.Forcing, row)
		d.ObsPhy = append(d.ObsPhy, obsPhy)
		d.ObsZoo = append(d.ObsZoo, obsZoo)
		d.TruePhy = append(d.TruePhy, vals[nv+2])
		d.TrueZoo = append(d.TrueZoo, vals[nv+3])
		if rec[len(rec)-1] == "test" && d.TrainEnd < 0 {
			d.TrainEnd = t
		}
	}
	if d.TrainEnd < 0 {
		d.TrainEnd = d.Days
	}
	return d, nil
}
