// Package gggp implements the GGGP baseline of Section IV-B4: grammar
// guided genetic programming performing model revision with a context-free
// expression grammar instead of TAG. Like GMR it receives the biological
// process of equations (1) and (2) as input and evolves both structure and
// parameters; unlike GMR, revisions are whole CFG expression trees attached
// at the extension points (no adjunction-based incremental growth and no
// insertion/deletion local search), with grammar-typed subtree crossover
// and mutation.
package gggp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gmr/internal/bio"
	"gmr/internal/expr"
	"gmr/internal/grammar"
	"gmr/internal/stats"
)

// Individual is one GGGP candidate: an optional revision expression per
// extension point plus the constant-parameter vector.
type Individual struct {
	// Slots maps extension ID → revision expression (nil/absent = no
	// revision at that point). Expressions use only the extension's
	// Table II variables and R literals.
	Slots map[int]*expr.Node
	// Params is the Table III constant vector.
	Params []float64
	// Fitness is the training RMSE; +Inf until evaluated.
	Fitness   float64
	Evaluated bool
}

// Clone deep-copies the individual.
func (ind *Individual) Clone() *Individual {
	cp := &Individual{
		Slots:     make(map[int]*expr.Node, len(ind.Slots)),
		Params:    append([]float64(nil), ind.Params...),
		Fitness:   ind.Fitness,
		Evaluated: ind.Evaluated,
	}
	for k, v := range ind.Slots {
		cp.Slots[k] = v.Clone()
	}
	return cp
}

func (ind *Individual) invalidate() {
	ind.Fitness = math.Inf(1)
	ind.Evaluated = false
}

// Config holds the GGGP settings (Appendix B: same configuration as GMR,
// with a 6× population compensating for GMR's local-search evaluations).
type Config struct {
	PopSize, MaxGen int
	// MaxDepth bounds slot-expression depth; zero means 5.
	MaxDepth int
	// Operator probabilities; zero-valued set defaults to the paper's
	// 0.3/0.3/0.3/0.1.
	PCrossover, PSubtreeMut, PGaussMut, PReplication float64
	TournamentSize, EliteSize                        int
	// SigmaRampGens ramps Gaussian-mutation σ in the final generations;
	// zero means MaxGen/4.
	SigmaRampGens int
	Seed          int64
	// Extensions is the Table II revision spec; nil means defaults.
	Extensions []grammar.Extension
	// Constants are the Table III priors; nil means defaults.
	Constants []bio.Constant
	// InitParams, when non-nil, is the starting parameter vector for
	// every individual (e.g. pre-calibrated values — the same input the
	// GMR framework receives). Nil means the Table III means.
	InitParams []float64
}

func (c Config) withDefaults() Config {
	if c.PopSize == 0 {
		c.PopSize = 1200
	}
	if c.MaxGen == 0 {
		c.MaxGen = 100
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 5
	}
	if c.PCrossover == 0 && c.PSubtreeMut == 0 && c.PGaussMut == 0 && c.PReplication == 0 {
		c.PCrossover, c.PSubtreeMut, c.PGaussMut, c.PReplication = 0.3, 0.3, 0.3, 0.1
	}
	if c.TournamentSize == 0 {
		c.TournamentSize = 5
	}
	if c.EliteSize == 0 {
		c.EliteSize = 2
	}
	if c.SigmaRampGens == 0 {
		c.SigmaRampGens = c.MaxGen / 4
	}
	if c.Extensions == nil {
		c.Extensions = grammar.DefaultExtensions()
	}
	if c.Constants == nil {
		c.Constants = bio.DefaultConstants()
	}
	return c
}

// growExpr generates a random CFG expression for an extension: the
// productions are E → E op E | log(E) | exp(E) | var | R.
func growExpr(rng *rand.Rand, ext grammar.Extension, depth int) *expr.Node {
	if depth <= 0 || rng.Float64() < 0.35 {
		k := rng.Intn(len(ext.Vars) + 1)
		if k == len(ext.Vars) {
			return expr.NewLit(rng.Float64())
		}
		return expr.NewVar(ext.Vars[k])
	}
	op := ext.Extenders[rng.Intn(len(ext.Extenders))]
	switch op {
	case expr.OpLog, expr.OpExp:
		return expr.NewUnary(op, growExpr(rng, ext, depth-1))
	default:
		return expr.NewBinary(op, growExpr(rng, ext, depth-1), growExpr(rng, ext, depth-1))
	}
}

// Assemble builds the revised process expressions: each occupied slot wraps
// the extension point of the manual process with its connector operator and
// the slot's expression.
func Assemble(ind *Individual, exts []grammar.Extension) (phy, zoo *expr.Node, err error) {
	phy, zoo = bio.PhyDeriv(), bio.ZooDeriv()
	byID := map[int]grammar.Extension{}
	for _, e := range exts {
		byID[e.ID] = e
	}
	apply := func(root *expr.Node) *expr.Node {
		out := root
		for id, rev := range ind.Slots {
			e, ok := byID[id]
			if !ok || rev == nil {
				continue
			}
			sym := e.ConnectorSym()
			if out.Sym == sym {
				out = expr.NewBinary(e.Connector, out, rev.Clone())
				continue
			}
			out.Walk(func(n *expr.Node) bool {
				if n.Sym == sym {
					orig := *n
					wrapped := expr.NewBinary(e.Connector, &orig, rev.Clone())
					*n = *wrapped
					return false
				}
				return true
			})
		}
		return out
	}
	phy = apply(phy)
	zoo = apply(zoo)
	return phy, zoo, nil
}

// slotNode addresses a node inside a slot expression for crossover.
type slotNode struct {
	id     int
	parent *expr.Node
	child  int // -1 when the node is the slot root
}

func collectNodes(ind *Individual) []slotNode {
	ids := make([]int, 0, len(ind.Slots))
	for id := range ind.Slots {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []slotNode
	for _, id := range ids {
		root := ind.Slots[id]
		if root == nil {
			continue
		}
		out = append(out, slotNode{id, nil, -1})
		root.Walk(func(n *expr.Node) bool {
			for i := range n.Kids {
				out = append(out, slotNode{id, n, i})
			}
			return true
		})
	}
	return out
}

func (s slotNode) get(ind *Individual) *expr.Node {
	if s.child < 0 {
		return ind.Slots[s.id]
	}
	return s.parent.Kids[s.child]
}

func (s slotNode) set(ind *Individual, n *expr.Node) {
	if s.child < 0 {
		ind.Slots[s.id] = n
	} else {
		s.parent.Kids[s.child] = n
	}
}

// Run executes the GGGP model-revision baseline against the given
// evaluator function (training RMSE of assembled process expressions).
func Run(cfg Config, fitness func(phy, zoo *expr.Node, params []float64) float64) (*Individual, error) {
	cfg = cfg.withDefaults()
	if fitness == nil {
		return nil, fmt.Errorf("gggp: fitness function required")
	}
	rng := stats.NewRand(cfg.Seed)
	exts := cfg.Extensions
	means := bio.Means(cfg.Constants)
	if cfg.InitParams != nil {
		means = append([]float64(nil), cfg.InitParams...)
	}

	evaluate := func(ind *Individual) {
		phy, zoo, err := Assemble(ind, exts)
		if err != nil {
			ind.Fitness = math.Inf(1)
			ind.Evaluated = true
			return
		}
		ind.Fitness = fitness(phy, zoo, ind.Params)
		ind.Evaluated = true
	}

	newRandom := func() *Individual {
		ind := &Individual{Slots: map[int]*expr.Node{}, Params: append([]float64(nil), means...), Fitness: math.Inf(1)}
		// Start from the input process with a few random revisions —
		// knowledge-based initialization like GMR's.
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			e := exts[rng.Intn(len(exts))]
			ind.Slots[e.ID] = growExpr(rng, e, 1+rng.Intn(cfg.MaxDepth-1))
		}
		return ind
	}

	pop := make([]*Individual, cfg.PopSize)
	for i := range pop {
		pop[i] = newRandom()
		evaluate(pop[i])
	}
	sortPop(pop)
	best := pop[0].Clone()

	extByID := map[int]grammar.Extension{}
	for _, e := range exts {
		extByID[e.ID] = e
	}
	tournament := func() *Individual {
		b := pop[rng.Intn(len(pop))]
		for i := 1; i < cfg.TournamentSize; i++ {
			c := pop[rng.Intn(len(pop))]
			if c.Fitness < b.Fitness {
				b = c
			}
		}
		return b
	}

	for gen := 1; gen <= cfg.MaxGen; gen++ {
		sigma := sigmaScale(gen, cfg.MaxGen, cfg.SigmaRampGens)
		next := make([]*Individual, 0, cfg.PopSize)
		for i := 0; i < cfg.EliteSize; i++ {
			next = append(next, pop[i].Clone())
		}
		for len(next) < cfg.PopSize {
			r := rng.Float64() * (cfg.PCrossover + cfg.PSubtreeMut + cfg.PGaussMut + cfg.PReplication)
			var child *Individual
			switch {
			case r < cfg.PCrossover:
				child = crossover(rng, tournament(), tournament())
			case r < cfg.PCrossover+cfg.PSubtreeMut:
				child = subtreeMutate(rng, tournament(), extByID, cfg.MaxDepth)
			case r < cfg.PCrossover+cfg.PSubtreeMut+cfg.PGaussMut:
				child = gaussMutate(rng, tournament(), cfg.Constants, sigma)
			default:
				child = tournament().Clone()
			}
			if !child.Evaluated {
				evaluate(child)
			}
			next = append(next, child)
		}
		pop = next
		sortPop(pop)
		if pop[0].Fitness < best.Fitness {
			best = pop[0].Clone()
		}
	}
	return best, nil
}

// crossover swaps grammar-compatible subtrees: both nodes must come from
// the same extension (same nonterminal type), so the Table II variable
// constraints are preserved.
func crossover(rng *rand.Rand, a, b *Individual) *Individual {
	c := a.Clone()
	d := b.Clone()
	na, nb := collectNodes(c), collectNodes(d)
	for try := 0; try < 10; try++ {
		if len(na) == 0 || len(nb) == 0 {
			break
		}
		sa := na[rng.Intn(len(na))]
		sb := nb[rng.Intn(len(nb))]
		if sa.id != sb.id {
			continue
		}
		sub := sb.get(d).Clone()
		sa.set(c, sub)
		c.invalidate()
		return c
	}
	// No compatible pair: copy a slot from b wholesale (deterministic
	// choice: lowest occupied extension ID).
	if id, ok := firstSlot(d); ok {
		c.Slots[id] = d.Slots[id].Clone()
		c.invalidate()
	}
	return c
}

// subtreeMutate regrows a random subtree (or adds/drops a whole slot).
func subtreeMutate(rng *rand.Rand, p *Individual, exts map[int]grammar.Extension, maxDepth int) *Individual {
	c := p.Clone()
	c.invalidate()
	nodes := collectNodes(c)
	roll := rng.Float64()
	switch {
	case roll < 0.2 || len(nodes) == 0:
		// Add or replace a whole slot.
		ids := make([]int, 0, len(exts))
		for id := range exts {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		id := ids[rng.Intn(len(ids))]
		c.Slots[id] = growExpr(rng, exts[id], 1+rng.Intn(maxDepth-1))
	case roll < 0.3:
		// Drop a slot (revision removal; deterministic choice).
		if id, ok := firstSlot(c); ok {
			delete(c.Slots, id)
		}
	default:
		s := nodes[rng.Intn(len(nodes))]
		depth := 1 + rng.Intn(maxDepth-1)
		s.set(c, growExpr(rng, exts[s.id], depth))
	}
	return c
}

// gaussMutate perturbs constants exactly as GMR does (Section III-B3).
func gaussMutate(rng *rand.Rand, p *Individual, consts []bio.Constant, sigma float64) *Individual {
	c := p.Clone()
	c.invalidate()
	for i, cc := range consts {
		c.Params[i] = stats.TruncGauss(rng, c.Params[i], sigma*cc.Mean/4, cc.Min, cc.Max)
	}
	ids := make([]int, 0, len(c.Slots))
	for id := range c.Slots {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		root := c.Slots[id]
		if root == nil {
			continue
		}
		root.Walk(func(n *expr.Node) bool {
			if n.Kind == expr.Lit {
				s := math.Abs(n.Val) / 4
				if s < 0.25 {
					s = 0.25
				}
				n.Val += sigma * s * rng.NormFloat64()
			}
			return true
		})
	}
	return c
}

func sigmaScale(gen, maxGen, ramp int) float64 {
	start := maxGen - ramp
	if gen < start || ramp <= 0 {
		return 1
	}
	return 1 - 0.9*float64(gen-start)/float64(ramp)
}

// firstSlot returns the lowest occupied extension ID.
func firstSlot(ind *Individual) (int, bool) {
	bestID, found := 0, false
	for id, rev := range ind.Slots {
		if rev == nil {
			continue
		}
		if !found || id < bestID {
			bestID, found = id, true
		}
	}
	return bestID, found
}

func sortPop(pop []*Individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].Fitness < pop[j].Fitness })
}
