package gggp

import (
	"math"
	"math/rand"
	"testing"

	"gmr/internal/bio"
	"gmr/internal/dataset"
	"gmr/internal/expr"
	"gmr/internal/grammar"
	"gmr/internal/metrics"
)

func testFitness(t *testing.T) (func(phy, zoo *expr.Node, params []float64) float64, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{Seed: 9, StartYear: 2000, EndYear: 2001, TrainEndYear: 2000})
	if err != nil {
		t.Fatal(err)
	}
	consts := bio.DefaultConstants()
	sim := bio.SimConfig{SubSteps: 2, Phy0: ds.ObsPhy[0], Zoo0: ds.ObsZoo[0]}
	forcing, obs := ds.TrainForcing(), ds.TrainObsPhy()
	return func(phy, zoo *expr.Node, params []float64) float64 {
		phy, zoo = expr.Simplify(phy), expr.Simplify(zoo)
		if err := grammar.BindSystem(phy, zoo, consts); err != nil {
			return math.Inf(1)
		}
		sys, err := bio.NewCompiledSystem(phy, zoo)
		if err != nil {
			return math.Inf(1)
		}
		return metrics.RMSE(sys.Predict(forcing, params, sim), obs)
	}, ds
}

func TestGrowExprRespectsGrammar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	exts := grammar.DefaultExtensions()
	for _, e := range exts {
		allowed := map[string]bool{}
		for _, v := range e.Vars {
			allowed[v] = true
		}
		for i := 0; i < 200; i++ {
			n := growExpr(rng, e, 4)
			if err := n.Validate(); err != nil {
				t.Fatalf("Ext%d grew invalid expression: %v", e.ID, err)
			}
			n.Walk(func(m *expr.Node) bool {
				if m.Kind == expr.Var && !allowed[m.Name] {
					t.Errorf("Ext%d expression uses disallowed variable %s", e.ID, m.Name)
				}
				if m.Kind == expr.Param {
					t.Errorf("Ext%d expression references a model constant", e.ID)
				}
				return true
			})
		}
	}
}

func TestAssembleWrapsExtensionPoints(t *testing.T) {
	exts := grammar.DefaultExtensions()
	ind := &Individual{
		Slots:  map[int]*expr.Node{1: expr.NewVar("Vph"), 9: expr.NewVar("Vtmp")},
		Params: bio.Means(bio.DefaultConstants()),
	}
	phy, zoo, err := Assemble(ind, exts)
	if err != nil {
		t.Fatal(err)
	}
	// Ext1 is additive on the whole dBPhy RHS.
	if phy.Op != expr.OpAdd {
		t.Errorf("Ext1 revision should wrap dBPhy with +, got %s", phy.Op)
	}
	hasVtmpFactor := false
	zoo.Walk(func(n *expr.Node) bool {
		if n.Kind == expr.Binary && n.Op == expr.OpMul && len(n.Kids) == 2 {
			if n.Kids[1].Kind == expr.Var && n.Kids[1].Name == "Vtmp" && n.Kids[0].Sym == "Ext9" {
				hasVtmpFactor = true
			}
		}
		return true
	})
	if !hasVtmpFactor {
		t.Error("Ext9 revision (× Vtmp) not found in assembled dBZoo")
	}
	// Empty individual assembles to the manual process exactly.
	empty := &Individual{Slots: map[int]*expr.Node{}, Params: ind.Params}
	p0, z0, err := Assemble(empty, exts)
	if err != nil {
		t.Fatal(err)
	}
	if p0.String() != bio.PhyDeriv().String() || z0.String() != bio.ZooDeriv().String() {
		t.Error("empty revision set does not assemble to the manual process")
	}
}

func TestRunImprovesOverManual(t *testing.T) {
	fitness, _ := testFitness(t)
	manual := fitness(bio.PhyDeriv(), bio.ZooDeriv(), bio.Means(bio.DefaultConstants()))
	best, err := Run(Config{PopSize: 40, MaxGen: 8, Seed: 3}, fitness)
	if err != nil {
		t.Fatal(err)
	}
	if best.Fitness >= manual {
		t.Errorf("GGGP best %v did not improve on manual %v", best.Fitness, manual)
	}
	if math.IsInf(best.Fitness, 1) {
		t.Error("GGGP returned an unevaluated best")
	}
}

func TestRunDeterminism(t *testing.T) {
	fitness, _ := testFitness(t)
	run := func() float64 {
		best, err := Run(Config{PopSize: 20, MaxGen: 4, Seed: 5}, fitness)
		if err != nil {
			t.Fatal(err)
		}
		return best.Fitness
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed gave %v then %v", a, b)
	}
}

func TestRunRequiresFitness(t *testing.T) {
	if _, err := Run(Config{PopSize: 4, MaxGen: 1}, nil); err == nil {
		t.Error("nil fitness accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	ind := &Individual{
		Slots:  map[int]*expr.Node{1: expr.Add(expr.NewVar("Vph"), expr.NewLit(2))},
		Params: []float64{1, 2, 3},
	}
	cp := ind.Clone()
	cp.Slots[1].Kids[1].Val = 99
	cp.Params[0] = 99
	if ind.Slots[1].Kids[1].Val == 99 || ind.Params[0] == 99 {
		t.Error("Clone shares state with original")
	}
}

func TestCrossoverPreservesSlotTyping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	exts := grammar.DefaultExtensions()
	extByID := map[int]grammar.Extension{}
	for _, e := range exts {
		extByID[e.ID] = e
	}
	mk := func(seed int64) *Individual {
		r := rand.New(rand.NewSource(seed))
		ind := &Individual{Slots: map[int]*expr.Node{}, Params: []float64{0}}
		for _, e := range exts[:3] {
			ind.Slots[e.ID] = growExpr(r, e, 3)
		}
		return ind
	}
	for i := 0; i < 100; i++ {
		c := crossover(rng, mk(int64(i)), mk(int64(i+999)))
		for id, root := range c.Slots {
			allowed := map[string]bool{}
			for _, v := range extByID[id].Vars {
				allowed[v] = true
			}
			root.Walk(func(n *expr.Node) bool {
				if n.Kind == expr.Var && !allowed[n.Name] {
					t.Fatalf("crossover moved %s into Ext%d", n.Name, id)
				}
				return true
			})
		}
	}
}
