// Package river implements the hydrological substrate of the case study
// (Appendix A of the paper): a river system modeled as a directed acyclic
// graph of measuring stations and virtual stations at confluences, with the
// flow mass balance of equation (9),
//
//	F_B,t+Δ = r_B·F_B,t + (1−r_A)·F_A,t + R_B,t+Δ,
//
// and flow-weighted averaging of water-body attributes when bodies merge.
// The hydrological process is static (not revised); it supplies the
// composite water-body attributes at the station of interest (S1) that
// drive the biological process.
package river

import (
	"fmt"
	"math"
)

// Station is a node of the river graph: either a measuring station with
// locally generated inflow or a virtual station inserted at a confluence.
type Station struct {
	Name string
	// Virtual marks confluence nodes: no local runoff, no retention,
	// instantaneous pass-through.
	Virtual bool
	// BaseFlow is the station's dry-weather local inflow (m³/s,
	// arbitrary units — only ratios matter for attribute mixing).
	BaseFlow float64
	// Retention is r_S of equation (9): the fraction of the water body
	// retained at the station per day (side pools, non-laminar flow).
	Retention float64
	// RunoffCoef scales how strongly rainfall converts to local runoff
	// at this station.
	RunoffCoef float64
	// LossRate is the fraction of the water body lost per day at this
	// station to evaporation or leakage — the extension the paper's
	// Extensibility section calls out for arid rivers. Attributes are
	// conserved under evaporation (concentrations rise as water
	// evaporates), which is modeled by scaling flow but not the
	// attribute mass of the evaporated fraction's solutes.
	LossRate float64
}

// Edge is a directed river segment between adjacent stations.
type Edge struct {
	From, To string
	// DelayDays is Δ of equation (9): the travel time of the water body
	// along the segment, in whole days.
	DelayDays int
}

// Network is a DAG of stations; edges point downstream.
type Network struct {
	Stations []Station
	Edges    []Edge

	index map[string]int
}

// NewNetwork builds a network and validates that edges reference known
// stations and the graph is acyclic.
func NewNetwork(stations []Station, edges []Edge) (*Network, error) {
	n := &Network{Stations: stations, Edges: edges, index: map[string]int{}}
	for i, s := range stations {
		if s.Name == "" {
			return nil, fmt.Errorf("river: station %d has no name", i)
		}
		if _, dup := n.index[s.Name]; dup {
			return nil, fmt.Errorf("river: duplicate station %q", s.Name)
		}
		n.index[s.Name] = i
	}
	for _, e := range edges {
		if _, ok := n.index[e.From]; !ok {
			return nil, fmt.Errorf("river: edge from unknown station %q", e.From)
		}
		if _, ok := n.index[e.To]; !ok {
			return nil, fmt.Errorf("river: edge to unknown station %q", e.To)
		}
		if e.DelayDays < 0 {
			return nil, fmt.Errorf("river: edge %s→%s has negative delay", e.From, e.To)
		}
	}
	if _, err := n.topoOrder(); err != nil {
		return nil, err
	}
	return n, nil
}

// Index returns the station index for a name.
func (n *Network) Index(name string) (int, bool) {
	i, ok := n.index[name]
	return i, ok
}

// Upstreams returns the edges flowing into the named station.
func (n *Network) Upstreams(name string) []Edge {
	var out []Edge
	for _, e := range n.Edges {
		if e.To == name {
			out = append(out, e)
		}
	}
	return out
}

// topoOrder returns station indices in topological (upstream-first) order,
// or an error if the graph has a cycle.
func (n *Network) topoOrder() ([]int, error) {
	indeg := make([]int, len(n.Stations))
	adj := make([][]int, len(n.Stations))
	for _, e := range n.Edges {
		f, t := n.index[e.From], n.index[e.To]
		adj[f] = append(adj[f], t)
		indeg[t]++
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, t := range adj[i] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) != len(n.Stations) {
		return nil, fmt.Errorf("river: network contains a cycle")
	}
	return order, nil
}

// Nakdong builds the study-site network of Figure 8 / Appendix A: six
// main-channel stations S6→S1, three tributaries T1–T3, and three virtual
// stations at the confluences (S6·T3, S4·T2, S3·T1). Segment delays are the
// paper's inter-station distances at a nominal 30 km/day travel speed.
func Nakdong() *Network {
	st := func(name string, base, ret, run float64) Station {
		return Station{Name: name, BaseFlow: base, Retention: ret, RunoffCoef: run}
	}
	vs := func(name string) Station { return Station{Name: name, Virtual: true} }
	stations := []Station{
		st("S6", 90, 0.12, 1.0),
		st("S5", 40, 0.10, 0.8),
		st("S4", 35, 0.10, 0.8),
		st("S3", 30, 0.08, 0.7),
		st("S2", 25, 0.08, 0.7),
		st("S1", 20, 0.06, 0.6),
		st("T3", 35, 0.15, 1.2),
		st("T2", 30, 0.15, 1.2),
		st("T1", 25, 0.15, 1.1),
		vs("VS1"), // S6·T3
		vs("VS2"), // S4·T2
		vs("VS3"), // S3·T1
	}
	day := func(km float64) int { return int(math.Ceil(km / 30.0)) }
	edges := []Edge{
		{From: "S6", To: "VS1", DelayDays: 0},
		{From: "T3", To: "VS1", DelayDays: day(3)},
		{From: "VS1", To: "S5", DelayDays: day(27.5)},
		{From: "S5", To: "VS2", DelayDays: day(42)},
		{From: "T2", To: "VS2", DelayDays: day(7.1)},
		{From: "VS2", To: "S4", DelayDays: 0},
		{From: "S4", To: "VS3", DelayDays: day(28.5)},
		{From: "T1", To: "VS3", DelayDays: day(5.5)},
		{From: "VS3", To: "S3", DelayDays: 0},
		{From: "S3", To: "S2", DelayDays: day(22.3)},
		{From: "S2", To: "S1", DelayDays: day(32.8)},
	}
	n, err := NewNetwork(stations, edges)
	if err != nil {
		panic("river: Nakdong network invalid: " + err.Error())
	}
	return n
}

// Inputs supplies the hydrological forcing: per-station rainfall and
// per-station local water-body attributes (the chemistry the local inflow
// carries). All series share the same length (days).
type Inputs struct {
	// Rain[station][t] is rainfall at the station on day t.
	Rain map[string][]float64
	// Attr[station][t][k] are the attributes of the station's local
	// inflow on day t (k indexes the attribute columns, caller-defined).
	Attr map[string][][]float64
	// RainAttr[station][k] are the attributes rainfall runoff carries
	// (dilute chemistry); nil means zeros.
	RainAttr map[string][]float64
}

// Result holds routed flows and composite attributes per station.
type Result struct {
	// Flow[station][t].
	Flow map[string][]float64
	// Attr[station][t][k]: flow-weighted composite attributes of the
	// water body at the station.
	Attr map[string][][]float64
}

// Route runs the hydrological process over the network: local inflow plus
// rainfall runoff enter at each real station, equation (9) propagates flow
// downstream with per-segment delays, and attributes mix as flow-weighted
// averages (including at virtual stations, where two or more bodies merge).
func (n *Network) Route(in *Inputs, days, nAttr int) (*Result, error) {
	order, err := n.topoOrder()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Flow: map[string][]float64{},
		Attr: map[string][][]float64{},
	}
	for _, s := range n.Stations {
		res.Flow[s.Name] = make([]float64, days)
		a := make([][]float64, days)
		for t := range a {
			a[t] = make([]float64, nAttr)
		}
		res.Attr[s.Name] = a
	}
	for _, si := range order {
		s := n.Stations[si]
		flow := res.Flow[s.Name]
		attr := res.Attr[s.Name]
		ups := n.Upstreams(s.Name)
		localAttr := in.Attr[s.Name]
		rain := in.Rain[s.Name]
		rainAttr := in.RainAttr[s.Name]
		for t := 0; t < days; t++ {
			var totalFlow float64
			mix := make([]float64, nAttr)
			// Retained fraction of yesterday's body (eq 9, first term).
			if t > 0 && s.Retention > 0 {
				w := s.Retention * flow[t-1]
				totalFlow += w
				for k := 0; k < nAttr; k++ {
					mix[k] += w * attr[t-1][k]
				}
			}
			// Inflow from upstream stations (eq 9, second term).
			for _, e := range ups {
				src := e.From
				ts := t - e.DelayDays
				if ts < 0 {
					continue
				}
				rA := n.Stations[n.index[src]].Retention
				w := (1 - rA) * res.Flow[src][ts]
				totalFlow += w
				for k := 0; k < nAttr; k++ {
					mix[k] += w * res.Attr[src][ts][k]
				}
			}
			// Local inflow and rainfall runoff (eq 9, third term).
			if !s.Virtual {
				local := s.BaseFlow
				if rain != nil {
					local += s.RunoffCoef * rain[t]
				}
				totalFlow += local
				for k := 0; k < nAttr; k++ {
					la := 0.0
					if localAttr != nil {
						la = localAttr[t][k]
					}
					// Rainfall runoff carries rainAttr; the base local
					// inflow carries the station's local attributes.
					if rain != nil && rainAttr != nil {
						base := s.BaseFlow
						ro := s.RunoffCoef * rain[t]
						mix[k] += base*la + ro*rainAttr[k]
						continue
					}
					mix[k] += local * la
				}
			}
			if totalFlow <= 0 {
				flow[t] = 0
				continue
			}
			// Evaporation/leakage: water leaves, dissolved attribute
			// mass stays (evaporative concentration).
			if s.LossRate > 0 {
				loss := s.LossRate
				if loss > 0.95 {
					loss = 0.95
				}
				totalFlow *= 1 - loss
			}
			flow[t] = totalFlow
			for k := 0; k < nAttr; k++ {
				attr[t][k] = mix[k] / totalFlow
			}
		}
	}
	return res, nil
}
