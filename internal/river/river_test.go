package river

import (
	"math"
	"testing"
)

func linearNet(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(
		[]Station{
			{Name: "A", BaseFlow: 10, Retention: 0.1, RunoffCoef: 1},
			{Name: "B", BaseFlow: 5, Retention: 0.2, RunoffCoef: 1},
		},
		[]Edge{{From: "A", To: "B", DelayDays: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork([]Station{{Name: "A"}, {Name: "A"}}, nil); err == nil {
		t.Error("duplicate station accepted")
	}
	if _, err := NewNetwork([]Station{{Name: "A"}}, []Edge{{From: "A", To: "Z"}}); err == nil {
		t.Error("edge to unknown station accepted")
	}
	if _, err := NewNetwork([]Station{{Name: ""}}, nil); err == nil {
		t.Error("unnamed station accepted")
	}
	if _, err := NewNetwork(
		[]Station{{Name: "A"}, {Name: "B"}},
		[]Edge{{From: "A", To: "B"}, {From: "B", To: "A"}},
	); err == nil {
		t.Error("cyclic network accepted")
	}
	if _, err := NewNetwork([]Station{{Name: "A"}, {Name: "B"}},
		[]Edge{{From: "A", To: "B", DelayDays: -1}}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestNakdongTopology(t *testing.T) {
	n := Nakdong()
	if len(n.Stations) != 12 {
		t.Errorf("Nakdong has %d stations, want 12 (9 real + 3 virtual)", len(n.Stations))
	}
	virtual := 0
	for _, s := range n.Stations {
		if s.Virtual {
			virtual++
		}
	}
	if virtual != 3 {
		t.Errorf("%d virtual stations, want 3 (one per confluence)", virtual)
	}
	// S1 is the outlet: nothing flows out of it, something flows in.
	for _, e := range n.Edges {
		if e.From == "S1" {
			t.Error("S1 must be the outlet")
		}
	}
	if len(n.Upstreams("S1")) == 0 {
		t.Error("S1 has no inflow")
	}
	// Every confluence (virtual station) merges at least two bodies.
	for _, s := range n.Stations {
		if s.Virtual && len(n.Upstreams(s.Name)) < 2 {
			t.Errorf("virtual station %s merges %d bodies, want >= 2", s.Name, len(n.Upstreams(s.Name)))
		}
	}
}

func TestRouteMassBalanceEquation9(t *testing.T) {
	// Hand-check equation (9) on a two-station chain with delay 1:
	// F_B,t = r_B·F_B,t-1 + (1-r_A)·F_A,t-1 + local_B.
	n := linearNet(t)
	days := 4
	in := &Inputs{
		Rain: map[string][]float64{"A": make([]float64, days), "B": make([]float64, days)},
		Attr: map[string][][]float64{},
	}
	res, err := n.Route(in, days, 1)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := res.Flow["A"], res.Flow["B"]
	// A: F_A,t = 0.1·F_A,t-1 + 10.
	if fa[0] != 10 {
		t.Errorf("F_A,0 = %v, want 10", fa[0])
	}
	if want := 0.1*10 + 10; fa[1] != want {
		t.Errorf("F_A,1 = %v, want %v", fa[1], want)
	}
	// B day0: no upstream arrival yet: F_B,0 = 5.
	if fb[0] != 5 {
		t.Errorf("F_B,0 = %v, want 5", fb[0])
	}
	// B day1: r_B·F_B,0 + (1-r_A)·F_A,0 + 5 = 1 + 9 + 5.
	if want := 0.2*5 + 0.9*10 + 5; math.Abs(fb[1]-want) > 1e-12 {
		t.Errorf("F_B,1 = %v, want %v", fb[1], want)
	}
	// B day2 uses F_A,1.
	if want := 0.2*fb[1] + 0.9*fa[1] + 5; math.Abs(fb[2]-want) > 1e-12 {
		t.Errorf("F_B,2 = %v, want %v", fb[2], want)
	}
}

func TestRouteAttributeMixing(t *testing.T) {
	// Two sources with distinct attribute values merging at a virtual
	// station: the composite must be the flow-weighted average.
	n, err := NewNetwork(
		[]Station{
			{Name: "A", BaseFlow: 30, RunoffCoef: 0},
			{Name: "B", BaseFlow: 10, RunoffCoef: 0},
			{Name: "V", Virtual: true},
		},
		[]Edge{{From: "A", To: "V"}, {From: "B", To: "V"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	days := 2
	attrOf := func(v float64) [][]float64 {
		a := make([][]float64, days)
		for t := range a {
			a[t] = []float64{v}
		}
		return a
	}
	in := &Inputs{
		Rain: map[string][]float64{},
		Attr: map[string][][]float64{"A": attrOf(1), "B": attrOf(5)},
	}
	res, err := n.Route(in, days, 1)
	if err != nil {
		t.Fatal(err)
	}
	// V receives 30 of attr 1 and 10 of attr 5 → (30·1+10·5)/40 = 2.
	if got := res.Attr["V"][0][0]; math.Abs(got-2) > 1e-12 {
		t.Errorf("composite attribute = %v, want 2", got)
	}
	if got := res.Flow["V"][0]; math.Abs(got-40) > 1e-12 {
		t.Errorf("merged flow = %v, want 40", got)
	}
}

func TestRouteRainfallRunoff(t *testing.T) {
	n, err := NewNetwork(
		[]Station{{Name: "A", BaseFlow: 10, Retention: 0, RunoffCoef: 2}},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	days := 2
	in := &Inputs{
		Rain: map[string][]float64{"A": {0, 5}},
		Attr: map[string][][]float64{"A": {{1}, {1}}},
		// Rain carries attribute value 9 (e.g. nutrient-rich runoff).
		RainAttr: map[string][]float64{"A": {9}},
	}
	res, err := n.Route(in, days, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow["A"][1] != 10+2*5 {
		t.Errorf("flow with runoff = %v, want 20", res.Flow["A"][1])
	}
	// Attribute: (10·1 + 10·9)/20 = 5.
	if got := res.Attr["A"][1][0]; math.Abs(got-5) > 1e-12 {
		t.Errorf("attr with runoff = %v, want 5", got)
	}
	// Dry day: pure local attribute.
	if got := res.Attr["A"][0][0]; math.Abs(got-1) > 1e-12 {
		t.Errorf("dry-day attr = %v, want 1", got)
	}
}

func TestRouteNakdongEndToEnd(t *testing.T) {
	n := Nakdong()
	days := 60
	in := &Inputs{
		Rain:     map[string][]float64{},
		Attr:     map[string][][]float64{},
		RainAttr: map[string][]float64{},
	}
	for _, s := range n.Stations {
		if s.Virtual {
			continue
		}
		rain := make([]float64, days)
		attr := make([][]float64, days)
		for t := range attr {
			attr[t] = []float64{2.5}
			if t%10 == 0 {
				rain[t] = 20
			}
		}
		in.Rain[s.Name] = rain
		in.Attr[s.Name] = attr
		in.RainAttr[s.Name] = []float64{4.0}
	}
	res, err := n.Route(in, days, 1)
	if err != nil {
		t.Fatal(err)
	}
	// After spin-up, S1 flow is positive and attributes are a convex
	// combination of local (2.5) and rain (4.0) signatures.
	for d := 30; d < days; d++ {
		if res.Flow["S1"][d] <= 0 {
			t.Fatalf("day %d: S1 flow %v", d, res.Flow["S1"][d])
		}
		a := res.Attr["S1"][d][0]
		if a < 2.4 || a > 4.1 {
			t.Fatalf("day %d: S1 attribute %v outside mixing range", d, a)
		}
	}
	// Downstream flow accumulates: S1 must carry more water than S6
	// once the wave arrives.
	if res.Flow["S1"][days-1] <= res.Flow["S6"][days-1] {
		t.Errorf("outlet flow %v not larger than headwater flow %v",
			res.Flow["S1"][days-1], res.Flow["S6"][days-1])
	}
}

func TestEvaporationLossConcentratesAttributes(t *testing.T) {
	// A station losing 20% of its water per day to evaporation carries
	// less flow but higher solute concentrations (mass conservation).
	mk := func(loss float64) (*Network, *Inputs) {
		n, err := NewNetwork(
			[]Station{{Name: "A", BaseFlow: 10, RunoffCoef: 0, LossRate: loss}},
			nil,
		)
		if err != nil {
			t.Fatal(err)
		}
		in := &Inputs{
			Rain: map[string][]float64{},
			Attr: map[string][][]float64{"A": {{2.0}, {2.0}}},
		}
		return n, in
	}
	dry, dryIn := mk(0.2)
	wet, wetIn := mk(0)
	dryRes, err := dry.Route(dryIn, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	wetRes, err := wet.Route(wetIn, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dryRes.Flow["A"][0] >= wetRes.Flow["A"][0] {
		t.Errorf("evaporation did not reduce flow: %v vs %v", dryRes.Flow["A"][0], wetRes.Flow["A"][0])
	}
	if math.Abs(dryRes.Flow["A"][0]-8) > 1e-12 {
		t.Errorf("flow after 20%% loss = %v, want 8", dryRes.Flow["A"][0])
	}
	if dryRes.Attr["A"][0][0] <= wetRes.Attr["A"][0][0] {
		t.Errorf("evaporation did not concentrate attributes: %v vs %v",
			dryRes.Attr["A"][0][0], wetRes.Attr["A"][0][0])
	}
	// Mass conservation: concentration × flow identical.
	dryMass := dryRes.Attr["A"][0][0] * dryRes.Flow["A"][0]
	wetMass := wetRes.Attr["A"][0][0] * wetRes.Flow["A"][0]
	if math.Abs(dryMass-wetMass) > 1e-9 {
		t.Errorf("solute mass not conserved: %v vs %v", dryMass, wetMass)
	}
}
