package metrics

import (
	"math"
	"testing"
)

// TestMetricEdgeCases drives all four metrics through the degenerate-input
// table: empty series, a single point, all-NaN series (either side), ±Inf
// contamination, constant series (zero variance), and mismatched lengths.
// Every metric must return its documented worst-case sentinel — never NaN,
// and never panic (e.g. divide-by-zero on zero variance).
func TestMetricEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name      string
		pred, obs []float64
	}{
		{"empty", nil, nil},
		{"empty non-nil", []float64{}, []float64{}},
		{"single point", []float64{1}, []float64{2}},
		{"all-NaN pred", []float64{nan, nan, nan}, []float64{1, 2, 3}},
		{"all-NaN obs", []float64{1, 2, 3}, []float64{nan, nan, nan}},
		{"NaN tail", []float64{1, 2, nan}, []float64{1, 2, 3}},
		{"+Inf pred", []float64{1, math.Inf(1), 3}, []float64{1, 2, 3}},
		{"-Inf obs", []float64{1, 2, 3}, []float64{1, math.Inf(-1), 3}},
		{"constant obs", []float64{1, 2, 3}, []float64{5, 5, 5}},
		{"constant both", []float64{4, 4, 4}, []float64{5, 5, 5}},
		{"length mismatch", []float64{1, 2}, []float64{1, 2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if v := RMSE(tc.pred, tc.obs); math.IsNaN(v) {
				t.Errorf("RMSE = NaN")
			}
			if v := MAE(tc.pred, tc.obs); math.IsNaN(v) {
				t.Errorf("MAE = NaN")
			}
			if v := NSE(tc.pred, tc.obs); math.IsNaN(v) {
				t.Errorf("NSE = NaN")
			}
			if v := R2(tc.pred, tc.obs); math.IsNaN(v) {
				t.Errorf("R2 = NaN")
			}
		})
	}

	// Sentinel spot-checks: degenerate inputs land on the documented
	// worst-case values, not merely "not NaN".
	if v := RMSE([]float64{1, 2, nan}, []float64{1, 2, 3}); !math.IsInf(v, 1) {
		t.Errorf("RMSE with NaN pred = %v, want +Inf", v)
	}
	if v := RMSE([]float64{1, 2, 3}, []float64{nan, nan, nan}); !math.IsInf(v, 1) {
		t.Errorf("RMSE with all-NaN obs = %v, want +Inf", v)
	}
	if v := MAE(nil, nil); !math.IsInf(v, 1) {
		t.Errorf("MAE(empty) = %v, want +Inf", v)
	}
	if v := NSE([]float64{4, 4, 4}, []float64{5, 5, 5}); !math.IsInf(v, -1) {
		t.Errorf("NSE on zero-variance obs = %v, want -Inf", v)
	}
	if v := R2([]float64{1, 2, 3}, []float64{5, 5, 5}); v != 0 {
		t.Errorf("R2 on constant obs = %v, want 0", v)
	}
	if v := R2([]float64{nan, 2, 3}, []float64{1, 2, 3}); v != 0 {
		t.Errorf("R2 with NaN pred = %v, want 0", v)
	}
	if v := R2([]float64{1}, []float64{2}); v != 0 {
		t.Errorf("R2 on a single point = %v, want 0", v)
	}

	// A healthy series still scores normally after the guards.
	if v := R2([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(v-1) > 1e-12 {
		t.Errorf("R2 on perfectly correlated series = %v, want 1", v)
	}
}
