// Package metrics implements the forecast-accuracy measures used in the
// paper's evaluation (Section IV-C): RMSE and MAE, plus the Nash–Sutcliffe
// efficiency and R² commonly reported alongside them in hydrology.
package metrics

import (
	"math"

	"gmr/internal/stats"
)

// RMSE returns the root mean square error between predicted and observed
// series. It returns +Inf when the lengths differ or the series are empty,
// or when any prediction is NaN/Inf, so that invalid models always lose.
func RMSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) || len(pred) == 0 {
		return math.Inf(1)
	}
	var sse float64
	for i := range pred {
		if math.IsNaN(pred[i]) || math.IsInf(pred[i], 0) {
			return math.Inf(1)
		}
		d := pred[i] - obs[i]
		sse += d * d
	}
	return math.Sqrt(sse / float64(len(pred)))
}

// MAE returns the mean absolute error between predicted and observed series,
// with the same invalid-input conventions as RMSE.
func MAE(pred, obs []float64) float64 {
	if len(pred) != len(obs) || len(pred) == 0 {
		return math.Inf(1)
	}
	var sae float64
	for i := range pred {
		if math.IsNaN(pred[i]) || math.IsInf(pred[i], 0) {
			return math.Inf(1)
		}
		sae += math.Abs(pred[i] - obs[i])
	}
	return sae / float64(len(pred))
}

// NSE returns the Nash–Sutcliffe model efficiency: 1 - SSE/SS_tot. A value of
// 1 is a perfect fit; 0 means the model predicts no better than the observed
// mean. Returns -Inf for invalid input.
func NSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) || len(pred) == 0 {
		return math.Inf(-1)
	}
	mean := stats.Mean(obs)
	var sse, sst float64
	for i := range pred {
		if math.IsNaN(pred[i]) || math.IsInf(pred[i], 0) {
			return math.Inf(-1)
		}
		d := pred[i] - obs[i]
		sse += d * d
		m := obs[i] - mean
		sst += m * m
	}
	if sst == 0 {
		return math.Inf(-1)
	}
	return 1 - sse/sst
}

// R2 returns the squared Pearson correlation between predicted and observed
// series.
func R2(pred, obs []float64) float64 {
	r := stats.Pearson(pred, obs)
	return r * r
}
