// Package metrics implements the forecast-accuracy measures used in the
// paper's evaluation (Section IV-C): RMSE and MAE, plus the Nash–Sutcliffe
// efficiency and R² commonly reported alongside them in hydrology.
package metrics

import (
	"math"

	"gmr/internal/stats"
)

// RMSE returns the root mean square error between predicted and observed
// series. It returns +Inf when the lengths differ or the series are empty,
// or when any prediction or observation is NaN/Inf, so that invalid models
// always lose (and a corrupt observation column can never smuggle a NaN
// into a fitness comparison, where it would poison sorting).
func RMSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) || len(pred) == 0 {
		return math.Inf(1)
	}
	var sse float64
	for i := range pred {
		if !finite(pred[i]) || !finite(obs[i]) {
			return math.Inf(1)
		}
		d := pred[i] - obs[i]
		sse += d * d
	}
	return math.Sqrt(sse / float64(len(pred)))
}

// MAE returns the mean absolute error between predicted and observed series,
// with the same invalid-input conventions as RMSE.
func MAE(pred, obs []float64) float64 {
	if len(pred) != len(obs) || len(pred) == 0 {
		return math.Inf(1)
	}
	var sae float64
	for i := range pred {
		if !finite(pred[i]) || !finite(obs[i]) {
			return math.Inf(1)
		}
		sae += math.Abs(pred[i] - obs[i])
	}
	return sae / float64(len(pred))
}

// NSE returns the Nash–Sutcliffe model efficiency: 1 - SSE/SS_tot. A value of
// 1 is a perfect fit; 0 means the model predicts no better than the observed
// mean. Returns -Inf for invalid input.
func NSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) || len(pred) == 0 {
		return math.Inf(-1)
	}
	mean := stats.Mean(obs)
	var sse, sst float64
	for i := range pred {
		if !finite(pred[i]) || !finite(obs[i]) {
			return math.Inf(-1)
		}
		d := pred[i] - obs[i]
		sse += d * d
		m := obs[i] - mean
		sst += m * m
	}
	if sst == 0 {
		return math.Inf(-1)
	}
	return 1 - sse/sst
}

// R2 returns the squared Pearson correlation between predicted and observed
// series. Invalid input — mismatched lengths, fewer than two points,
// constant series, or any non-finite value in either series — yields 0 (no
// explanatory power). Without the finiteness guard, Pearson's sums would
// propagate NaN through the zero-variance check and into reports.
func R2(pred, obs []float64) float64 {
	for i := range pred {
		if !finite(pred[i]) {
			return 0
		}
	}
	for i := range obs {
		if !finite(obs[i]) {
			return 0
		}
	}
	r := stats.Pearson(pred, obs)
	return r * r
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
