package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestRMSEAndMAEKnownValues(t *testing.T) {
	pred := []float64{1, 2, 3}
	obs := []float64{1, 2, 3}
	if v := RMSE(pred, obs); v != 0 {
		t.Errorf("RMSE identical series = %v", v)
	}
	if v := MAE(pred, obs); v != 0 {
		t.Errorf("MAE identical series = %v", v)
	}
	pred = []float64{2, 4}
	obs = []float64{0, 0}
	if v := RMSE(pred, obs); math.Abs(v-math.Sqrt(10)) > 1e-12 {
		t.Errorf("RMSE = %v, want sqrt(10)", v)
	}
	if v := MAE(pred, obs); v != 3 {
		t.Errorf("MAE = %v, want 3", v)
	}
}

func TestInvalidInputsLose(t *testing.T) {
	if !math.IsInf(RMSE(nil, nil), 1) {
		t.Error("empty RMSE should be +Inf")
	}
	if !math.IsInf(RMSE([]float64{1}, []float64{1, 2}), 1) {
		t.Error("mismatched RMSE should be +Inf")
	}
	if !math.IsInf(RMSE([]float64{math.NaN()}, []float64{1}), 1) {
		t.Error("NaN prediction RMSE should be +Inf")
	}
	if !math.IsInf(MAE([]float64{math.Inf(1)}, []float64{1}), 1) {
		t.Error("Inf prediction MAE should be +Inf")
	}
}

// Property: MAE <= RMSE for any series (Jensen), and both are
// translation-invariant.
func TestMAELeqRMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(50)
		pred := make([]float64, n)
		obs := make([]float64, n)
		for i := range pred {
			pred[i] = rng.NormFloat64() * 5
			obs[i] = rng.NormFloat64() * 5
		}
		mae, rmse := MAE(pred, obs), RMSE(pred, obs)
		if mae > rmse+1e-12 {
			t.Fatalf("MAE %v > RMSE %v", mae, rmse)
		}
		shiftP := make([]float64, n)
		shiftO := make([]float64, n)
		for i := range pred {
			shiftP[i] = pred[i] + 100
			shiftO[i] = obs[i] + 100
		}
		if math.Abs(RMSE(shiftP, shiftO)-rmse) > 1e-9 {
			t.Fatal("RMSE not translation invariant")
		}
	}
}

func TestNSE(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if v := NSE(obs, obs); math.Abs(v-1) > 1e-12 {
		t.Errorf("perfect NSE = %v", v)
	}
	// Predicting the mean gives NSE 0.
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if v := NSE(mean, obs); math.Abs(v) > 1e-12 {
		t.Errorf("mean-prediction NSE = %v", v)
	}
	if !math.IsInf(NSE([]float64{1}, []float64{1}), -1) {
		t.Error("constant observations should give -Inf NSE")
	}
}

func TestR2(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	pred := []float64{2, 4, 6, 8} // perfectly correlated
	if v := R2(pred, obs); math.Abs(v-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", v)
	}
}
