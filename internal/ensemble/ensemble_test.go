package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"gmr/internal/bio"
	"gmr/internal/dataset"
	"gmr/internal/expr"
)

// fixture compiles the manual process over a synthetic window and returns
// everything an ensemble run needs.
func fixture(t *testing.T, days int) (*bio.SegSystem, *bio.ExogPlan, bio.SimConfig, []bio.Constant) {
	t.Helper()
	phy, zoo, consts, err := bio.ManualSystem()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := bio.NewSegSystem(phy, zoo)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{Seed: 3, StartYear: 2000, EndYear: 2002, TrainEndYear: 2001})
	if err != nil {
		t.Fatal(err)
	}
	plan := sys.BuildExogPlan(ds.Forcing[:days])
	sim := dataset.ModelSimConfig(2, ds.ObsPhy[0], ds.ObsZoo[0])
	return sys, plan, sim, consts
}

// jittered draws n parameter vectors around the Table III means, inside the
// box, deterministic per seed.
func jittered(consts []bio.Constant, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, len(consts))
		for j, c := range consts {
			v[j] = c.Mean + 0.05*(c.Max-c.Min)*(rng.Float64()-0.5)
		}
		out[i] = v
	}
	return out
}

// TestRunMatchesSingleMember pins the lane-batching invariant the whole
// subsystem rests on: a member's trajectory inside a 20-wide ensemble is
// bitwise identical to simulating that member alone.
func TestRunMatchesSingleMember(t *testing.T) {
	const days = 30
	sys, plan, sim, consts := fixture(t, days)
	members := jittered(consts, 20, 11)

	var sc bio.SimScratch
	batch := Run(sys, plan, sim, members, days, &sc, nil)
	if batch.Batches != 3 || batch.Members != 20 {
		t.Fatalf("batches=%d members=%d, want 3/20", batch.Batches, batch.Members)
	}
	wantFill := 20.0 / 24.0
	if math.Abs(batch.MeanLaneFill()-wantFill) > 1e-12 {
		t.Fatalf("lane fill %v, want %v", batch.MeanLaneFill(), wantFill)
	}
	for i, m := range members {
		var sc1 bio.SimScratch
		solo := Run(sys, plan, sim, [][]float64{m}, days, &sc1, nil)
		if len(solo.Preds[0]) != len(batch.Preds[i]) {
			t.Fatalf("member %d: %d vs %d days", i, len(batch.Preds[i]), len(solo.Preds[0]))
		}
		for tt := range solo.Preds[0] {
			if math.Float64bits(solo.Preds[0][tt]) != math.Float64bits(batch.Preds[i][tt]) {
				t.Fatalf("member %d day %d: batched %v vs solo %v", i, tt, batch.Preds[i][tt], solo.Preds[0][tt])
			}
		}
	}
}

// TestRunDeterministic: same inputs, fresh scratch ⇒ bitwise-identical
// trajectories and reduction.
func TestRunDeterministic(t *testing.T) {
	const days = 45
	sys, plan, sim, consts := fixture(t, days)
	members := jittered(consts, 13, 5)
	qs := []float64{0.05, 0.25, 0.5, 0.75, 0.95}

	var sc1, sc2 bio.SimScratch
	r1, f1, err := Simulate(sys, plan, sim, members, days, qs, &sc1)
	if err != nil {
		t.Fatal(err)
	}
	r2, f2, err := Simulate(sys, plan, sim, members, days, qs, &sc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != len(f2) {
		t.Fatalf("fault counts differ: %d vs %d", len(f1), len(f2))
	}
	if r1.Survivors != r2.Survivors {
		t.Fatalf("survivors differ: %d vs %d", r1.Survivors, r2.Survivors)
	}
	for i := range r1.Bands {
		for tt := range r1.Bands[i] {
			if math.Float64bits(r1.Bands[i][tt]) != math.Float64bits(r2.Bands[i][tt]) {
				t.Fatalf("band %d day %d differs", i, tt)
			}
		}
	}
	for tt := range r1.Mean {
		if math.Float64bits(r1.Mean[tt]) != math.Float64bits(r2.Mean[tt]) ||
			math.Float64bits(r1.Spread[tt]) != math.Float64bits(r2.Spread[tt]) {
			t.Fatalf("mean/spread day %d differs", tt)
		}
	}
}

// TestRunQuarantinesDivergentMember: a parameter vector driven far outside
// the physical box overflows the integrator; the member is quarantined with
// a reason code and the survivors' bands are unaffected by its presence.
func TestRunQuarantinesDivergentMember(t *testing.T) {
	const days = 30
	sys, plan, sim, consts := fixture(t, days)
	members := jittered(consts, 5, 2)
	bad := make([]float64, len(consts))
	for j := range bad {
		bad[j] = 1e300
	}
	members = append(members, bad)

	var sc bio.SimScratch
	run := Run(sys, plan, sim, members, days, &sc, nil)
	if len(run.Faults) != 1 {
		t.Fatalf("faults: %+v, want exactly the divergent member", run.Faults)
	}
	f := run.Faults[0]
	if f.Member != 5 || (f.Reason != "nan" && f.Reason != "inf") {
		t.Fatalf("fault %+v", f)
	}
	if len(run.Preds[5]) >= days {
		t.Fatal("divergent member produced a full trajectory")
	}

	red, err := Reduce(run, days, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if red.Survivors != 5 {
		t.Fatalf("survivors %d, want 5", red.Survivors)
	}
	var scClean bio.SimScratch
	clean := Run(sys, plan, sim, members[:5], days, &scClean, nil)
	redClean, err := Reduce(clean, days, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	for tt := range red.Bands[0] {
		if math.Float64bits(red.Bands[0][tt]) != math.Float64bits(redClean.Bands[0][tt]) {
			t.Fatalf("day %d: quarantined member leaked into the band", tt)
		}
	}
}

// TestReduceQuantiles checks the order statistics on hand-built
// trajectories: 4 constant members 1..4.
func TestReduceQuantiles(t *testing.T) {
	run := &RunResult{Preds: [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}}
	red, err := Reduce(run, 2, []float64{0.5, 0.25, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if got := red.Quantiles; got[0] != 0.25 || got[1] != 0.5 || got[2] != 0.95 {
		t.Fatalf("quantiles not sorted: %v", got)
	}
	// Type-7: h=q*(n-1) over {1,2,3,4}.
	want := []float64{1.75, 2.5, 3.85}
	for i, w := range want {
		for tt := 0; tt < 2; tt++ {
			if math.Abs(red.Bands[i][tt]-w) > 1e-12 {
				t.Fatalf("q=%v day %d: %v, want %v", red.Quantiles[i], tt, red.Bands[i][tt], w)
			}
		}
	}
	if red.Mean[0] != 2.5 {
		t.Fatalf("mean %v", red.Mean[0])
	}
	if math.Abs(red.Spread[0]-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("spread %v", red.Spread[0])
	}
}

func TestReduceRejectsBadInput(t *testing.T) {
	run := &RunResult{Preds: [][]float64{{1}}}
	if _, err := Reduce(run, 1, []float64{0}); err == nil {
		t.Fatal("accepted q=0")
	}
	if _, err := Reduce(run, 1, []float64{1}); err == nil {
		t.Fatal("accepted q=1")
	}
	empty := &RunResult{Preds: [][]float64{{}}}
	if _, err := Reduce(empty, 1, []float64{0.5}); err == nil {
		t.Fatal("accepted a fully quarantined ensemble")
	}
}

func TestMeanLaneFillFull(t *testing.T) {
	r := &RunResult{Batches: 8, Members: 8 * expr.Lanes}
	if r.MeanLaneFill() != 1.0 {
		t.Fatalf("fill %v", r.MeanLaneFill())
	}
	if (&RunResult{}).MeanLaneFill() != 0 {
		t.Fatal("zero-batch fill")
	}
}
