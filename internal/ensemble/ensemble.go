// Package ensemble simulates a posterior ensemble of parameter vectors
// through one compiled model structure and reduces the member trajectories
// to per-day uncertainty bands (DESIGN.md §15).
//
// The execution path is the 8-lane SoA kernel (DESIGN.md §11): ensemble
// members are exactly the kernel's per-lane PARAM dimension, so M members
// cost ⌈M/expr.Lanes⌉ kernel launches over one shared exogenous plan —
// the same batching serve uses across concurrent requests, applied within
// a single request. Member order is deterministic (input order), lane
// arithmetic is elementwise, and compaction never perturbs surviving
// lanes, so a fixed (structure, plan, members) triple reduces to bitwise
// identical bands regardless of chunking or concurrency around it.
//
// Members whose state goes non-finite mid-window are quarantined with the
// evalx reason vocabulary ("nan"/"inf") and excluded from the reduction:
// a diverged trajectory says the parameter draw left the model's stable
// region, not that the river will hold an infinite biomass.
package ensemble

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gmr/internal/bio"
	"gmr/internal/expr"
)

// MemberFault records one quarantined ensemble member: its index in the
// input order, why it died ("nan" or "inf"), and the day it died.
type MemberFault struct {
	Member int    `json:"member"`
	Reason string `json:"reason"`
	Day    int    `json:"day"`
}

// RunResult holds the raw member trajectories of one ensemble run plus the
// lane-occupancy accounting the serving benchmarks report.
type RunResult struct {
	// Preds[i] is member i's per-day biomass; quarantined members hold the
	// finite prefix up to the day they died.
	Preds [][]float64
	// Faults lists quarantined members in member order.
	Faults []MemberFault
	// Batches counts lane-kernel launches; Members is the total member
	// count across them (MeanLaneFill = Members / (Batches·expr.Lanes)).
	Batches int
	Members int
}

// MeanLaneFill is the fraction of lane slots that carried a real member
// across the run's kernel launches — 1.0 when the member count is a
// multiple of expr.Lanes.
func (r *RunResult) MeanLaneFill() float64 {
	if r.Batches == 0 {
		return 0
	}
	return float64(r.Members) / float64(r.Batches*expr.Lanes)
}

// BatchFunc observes one kernel launch: the number of members in the
// chunk and the launch's wall time. Used by serve to feed its kernel
// latency histogram; nil disables.
type BatchFunc func(members int, dur time.Duration)

// Run simulates every member through sys over the plan's window, lane-
// batched in chunks of expr.Lanes in input order. days must match the
// plan's day count; sc is the reusable kernel scratch (pass a fresh one
// for concurrent runs). The result is bitwise deterministic for fixed
// (sys, plan, sim, members).
func Run(sys *bio.SegSystem, plan *bio.ExogPlan, sim bio.SimConfig, members [][]float64, days int, sc *bio.SimScratch, onBatch BatchFunc) *RunResult {
	res := &RunResult{
		Preds:   make([][]float64, len(members)),
		Members: len(members),
	}
	for i := range res.Preds {
		res.Preds[i] = make([]float64, 0, days)
	}
	for base := 0; base < len(members); base += expr.Lanes {
		end := base + expr.Lanes
		if end > len(members) {
			end = len(members)
		}
		chunk := members[base:end]
		t0 := time.Now()
		sys.PrologueLanes(chunk, sc)
		off := base
		sys.KernelLanes(plan, sim, sc, len(chunk), func(m, t int, bphy float64) bool {
			m += off
			if math.IsNaN(bphy) || math.IsInf(bphy, 0) {
				reason := "inf"
				if math.IsNaN(bphy) {
					reason = "nan"
				}
				res.Faults = append(res.Faults, MemberFault{Member: m, Reason: reason, Day: t})
				return false
			}
			res.Preds[m] = append(res.Preds[m], bphy)
			return true
		})
		res.Batches++
		if onBatch != nil {
			onBatch(len(chunk), time.Since(t0))
		}
	}
	// Lane compaction interleaves fault callbacks across members within a
	// chunk; report them in member order so the result is order-canonical.
	sort.Slice(res.Faults, func(i, j int) bool { return res.Faults[i].Member < res.Faults[j].Member })
	return res
}

// Reduction is the per-day statistical summary of an ensemble's surviving
// members.
type Reduction struct {
	// Quantiles echoes the requested probabilities, ascending.
	Quantiles []float64
	// Bands[i][t] is the Quantiles[i] quantile of surviving members' day-t
	// biomass (linear interpolation between order statistics, R type 7).
	Bands [][]float64
	// Mean and Spread are the survivors' per-day mean and population
	// standard deviation.
	Mean   []float64
	Spread []float64
	// Survivors counts members included in the reduction.
	Survivors int
}

// Reduce computes per-day quantile bands over the run's surviving members.
// Quarantined members are excluded entirely — a band mixing finite days of
// a member that later diverged would understate the divergence. Quantiles
// must each lie in (0,1); they are sorted ascending in the result. Errors
// when no member survived the full window.
func Reduce(r *RunResult, days int, quantiles []float64) (*Reduction, error) {
	qs := append([]float64(nil), quantiles...)
	sort.Float64s(qs)
	for _, q := range qs {
		if !(q > 0 && q < 1) {
			return nil, fmt.Errorf("ensemble: quantile %v outside (0,1)", q)
		}
	}
	var alive [][]float64
	for _, p := range r.Preds {
		if len(p) == days {
			alive = append(alive, p)
		}
	}
	if len(alive) == 0 {
		return nil, fmt.Errorf("ensemble: no surviving members (of %d)", len(r.Preds))
	}
	red := &Reduction{
		Quantiles: qs,
		Bands:     make([][]float64, len(qs)),
		Mean:      make([]float64, days),
		Spread:    make([]float64, days),
		Survivors: len(alive),
	}
	for i := range red.Bands {
		red.Bands[i] = make([]float64, days)
	}
	col := make([]float64, len(alive))
	for t := 0; t < days; t++ {
		for i, p := range alive {
			col[i] = p[t]
		}
		sort.Float64s(col)
		for i, q := range qs {
			red.Bands[i][t] = quantileSorted(col, q)
		}
		mean := 0.0
		for _, v := range col {
			mean += v
		}
		mean /= float64(len(col))
		vr := 0.0
		for _, v := range col {
			d := v - mean
			vr += d * d
		}
		red.Mean[t] = mean
		red.Spread[t] = math.Sqrt(vr / float64(len(col)))
	}
	return red, nil
}

// Simulate is Run followed by Reduce: the one-call form for callers that
// don't need per-batch timing or raw trajectories.
func Simulate(sys *bio.SegSystem, plan *bio.ExogPlan, sim bio.SimConfig, members [][]float64, days int, quantiles []float64, sc *bio.SimScratch) (*Reduction, []MemberFault, error) {
	run := Run(sys, plan, sim, members, days, sc, nil)
	red, err := Reduce(run, days, quantiles)
	if err != nil {
		return nil, run.Faults, err
	}
	return red, run.Faults, nil
}

// quantileSorted interpolates the q quantile of an ascending slice using
// h = q·(n-1) between adjacent order statistics (R type 7, numpy default).
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	h := q * float64(len(s)-1)
	lo := int(h)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := h - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}
