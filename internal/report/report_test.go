package report

import (
	"strings"
	"testing"

	"gmr/internal/bio"
	"gmr/internal/core"
	"gmr/internal/dataset"
	"gmr/internal/evalx"
	"gmr/internal/expr"
	"gmr/internal/gp"
)

func testRun(t *testing.T) (*dataset.Dataset, *core.Result) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{Seed: 4, StartYear: 2000, EndYear: 2002, TrainEndYear: 2001})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(ds, core.Config{
		GP:   gp.Config{PopSize: 16, MaxGen: 3, LocalSearchSteps: 1, Seed: 2},
		Eval: evalx.AllSpeedups(dataset.ModelSimConfig(2, 0, 0)),
		TopK: 5, PreCalibrateBudget: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, res
}

func TestWriteReportSections(t *testing.T) {
	ds, res := testRun(t)
	var buf strings.Builder
	err := Write(&buf, ds, res, Options{
		Selectivity: true, Sensitivity: true, History: true, AnalysisWindowDays: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"GMR revision report",
		"train  RMSE",
		"test   RMSE",
		"dBPhy/dt =",
		"dBZoo/dt =",
		"revisions relative to the manual process",
		"evaluator:",
		"variable selectivity",
		"parameter sensitivity",
		"run 0 best fitness by generation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n----\n%s", want, out)
		}
	}
}

func TestWriteEmptyResult(t *testing.T) {
	if err := Write(&strings.Builder{}, nil, nil, Options{}); err == nil {
		t.Error("nil result accepted")
	}
}

func TestDiffAgainstManual(t *testing.T) {
	// Unrevised process → "unrevised" lines.
	phy := expr.Simplify(bio.PhyDeriv())
	zoo := expr.Simplify(bio.ZooDeriv())
	lines := DiffAgainstManual(phy, zoo)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "dBPhy/dt: unrevised") || !strings.Contains(joined, "dBZoo/dt: unrevised") {
		t.Errorf("unrevised process not detected:\n%s", joined)
	}
	// Revision recruiting a new variable.
	revised := expr.Add(phy.Clone(), expr.NewVar("Vph"))
	lines = DiffAgainstManual(revised, zoo)
	joined = strings.Join(lines, "\n")
	if !strings.Contains(joined, "recruited Vph") {
		t.Errorf("recruited variable not reported:\n%s", joined)
	}
	if !strings.Contains(joined, "size") {
		t.Errorf("size change not reported:\n%s", joined)
	}
}

func TestPredictionsCSV(t *testing.T) {
	ds, res := testRun(t)
	var buf strings.Builder
	if err := PredictionsCSV(&buf, ds, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "date,observed,predicted" {
		t.Errorf("bad header %q", lines[0])
	}
	if len(lines)-1 != len(res.TestPred) {
		t.Errorf("%d rows for %d predictions", len(lines)-1, len(res.TestPred))
	}
	if !strings.HasPrefix(lines[1], ds.Dates[ds.TrainEnd]) {
		t.Errorf("first row %q does not start at the test window", lines[1])
	}
}
