// Package report renders the outcome of a GMR run as a human-oriented
// document: forecast metrics, the revised differential equations with the
// revisions highlighted against the manual process, the Figure 9
// variable-selectivity analysis, the parameter-sensitivity ranking, and
// the evolution history. cmd/gmr and the examples use it to produce
// consistent output.
package report

import (
	"fmt"
	"io"
	"strings"

	"gmr/internal/bio"
	"gmr/internal/core"
	"gmr/internal/dataset"
	"gmr/internal/expr"
)

// Options selects report sections.
type Options struct {
	// Selectivity enables the Figure 9 analysis (costs one simulation
	// per model per variable).
	Selectivity bool
	// Sensitivity enables the parameter-sensitivity ranking of the best
	// model.
	Sensitivity bool
	// History prints per-generation best fitness for each run.
	History bool
	// AnalysisWindowDays bounds the simulation window used by the
	// analyses; zero means 730.
	AnalysisWindowDays int
}

// Write renders the report for a finished run.
func Write(w io.Writer, ds *dataset.Dataset, res *core.Result, opts Options) error {
	if res == nil || res.Best == nil {
		return fmt.Errorf("report: empty result")
	}
	fmt.Fprintf(w, "GMR revision report\n")
	fmt.Fprintf(w, "===================\n\n")
	fmt.Fprintf(w, "data: %d days (train %d, test %d)\n\n", ds.Days, ds.TrainEnd, ds.Days-ds.TrainEnd)
	fmt.Fprintf(w, "accuracy (best model, selected by test RMSE per the paper's protocol):\n")
	fmt.Fprintf(w, "  train  RMSE %8.3f   MAE %8.3f\n", res.TrainRMSE, res.TrainMAE)
	fmt.Fprintf(w, "  test   RMSE %8.3f   MAE %8.3f\n\n", res.TestRMSE, res.TestMAE)

	fmt.Fprintf(w, "revised process:\n")
	fmt.Fprintf(w, "  dBPhy/dt = %s\n", res.BestPhy.Pretty())
	fmt.Fprintf(w, "  dBZoo/dt = %s\n\n", res.BestZoo.Pretty())

	fmt.Fprintf(w, "revisions relative to the manual process:\n")
	for _, d := range DiffAgainstManual(res.BestPhy, res.BestZoo) {
		fmt.Fprintf(w, "  %s\n", d)
	}
	fmt.Fprintln(w)

	st := res.EvalStats
	if st.Evaluations > 0 {
		frac := 0.0
		if st.StepsPossible > 0 {
			frac = 100 * float64(st.StepsEvaluated) / float64(st.StepsPossible)
		}
		fmt.Fprintf(w, "evaluator: %d evaluations (%d full, %d short-circuited, %d cache hits); %.1f%% of fitness cases simulated\n",
			st.Evaluations, st.FullEvals, st.ShortCircuits, st.CacheHits, frac)
		if st.LaneBatches > 0 {
			fmt.Fprintf(w, "lane kernel: %d batches, %.1f avg lanes filled, %d lane short circuits\n",
				st.LaneBatches, float64(st.LanesFilled)/float64(st.LaneBatches), st.LaneShortCircuits)
		}
		if st.PopClusters > 0 || st.PopScalarFallbacks > 0 {
			fill := 0.0
			if st.PopLaneBatches > 0 {
				fill = float64(st.PopLanesFilled) / float64(st.PopLaneBatches)
			}
			fmt.Fprintf(w, "pop scheduler: %d clusters, %d scalar fallbacks, %d lane batches (%.1f avg fill)\n",
				st.PopClusters, st.PopScalarFallbacks, st.PopLaneBatches, fill)
		}
		fmt.Fprintln(w)
	}

	window := ds.TrainForcing()
	limit := opts.AnalysisWindowDays
	if limit == 0 {
		limit = 730
	}
	if len(window) > limit {
		window = window[:limit]
	}
	sim := dataset.ModelSimConfig(4, ds.ObsPhy[0], ds.ObsZoo[0])

	if opts.Selectivity && len(res.TopModels) > 0 {
		sel, err := core.AnalyzeSelectivity(res.TopModels, bio.DefaultConstants(), window, sim)
		if err == nil {
			fmt.Fprintf(w, "variable selectivity among the %d best models (Figure 9):\n", len(res.TopModels))
			for _, s := range sel {
				bar := strings.Repeat("#", int(s.Percent/5))
				fmt.Fprintf(w, "  %-5s %5.1f%% %-20s %s\n", s.Variable, s.Percent, bar, s.Correlation)
			}
			fmt.Fprintln(w)
		}
	}

	if opts.Sensitivity {
		sens, err := core.AnalyzeParamSensitivity(res.Best, bio.DefaultConstants(), window, sim)
		if err == nil {
			fmt.Fprintf(w, "parameter sensitivity of the best model (+10%% perturbation):\n")
			for _, s := range sens {
				fmt.Fprintf(w, "  %-6s %.4f\n", s.Name, s.Relative)
			}
			fmt.Fprintln(w)
		}
	}

	if opts.History {
		for i, r := range res.PerRun {
			fmt.Fprintf(w, "run %d best fitness by generation:", i)
			step := len(r.History) / 10
			if step < 1 {
				step = 1
			}
			for g := 0; g < len(r.History); g += step {
				fmt.Fprintf(w, " %d:%.2f", r.History[g].Gen, r.History[g].BestFitness)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// DiffAgainstManual describes, line by line, how the revised equations
// differ from the manual process: new variables recruited and the change
// in expression size per equation.
func DiffAgainstManual(phy, zoo *expr.Node) []string {
	var out []string
	manPhy := expr.Simplify(bio.PhyDeriv())
	manZoo := expr.Simplify(bio.ZooDeriv())
	out = append(out, diffOne("dBPhy/dt", manPhy, phy)...)
	out = append(out, diffOne("dBZoo/dt", manZoo, zoo)...)
	return out
}

func diffOne(label string, manual, revised *expr.Node) []string {
	var out []string
	if revised == nil {
		return []string{label + ": missing"}
	}
	if manual.String() == revised.String() {
		return []string{label + ": unrevised"}
	}
	manVars := map[string]bool{}
	for _, v := range manual.Vars() {
		manVars[v] = true
	}
	var added []string
	for _, v := range revised.Vars() {
		if !manVars[v] {
			added = append(added, v)
		}
	}
	if len(added) > 0 {
		out = append(out, fmt.Sprintf("%s: recruited %s", label, strings.Join(added, ", ")))
	}
	out = append(out, fmt.Sprintf("%s: size %d → %d nodes", label, manual.Size(), revised.Size()))
	return out
}

// PredictionsCSV writes day,observed,predicted rows for the test window —
// raw material for plotting the forecast against observations.
func PredictionsCSV(w io.Writer, ds *dataset.Dataset, res *core.Result) error {
	if len(res.TestPred) == 0 {
		return fmt.Errorf("report: result has no test predictions")
	}
	if _, err := fmt.Fprintln(w, "date,observed,predicted"); err != nil {
		return err
	}
	obs := ds.TestObsPhy()
	for i, p := range res.TestPred {
		day := ds.TrainEnd + i
		if _, err := fmt.Fprintf(w, "%s,%g,%g\n", ds.Dates[day], obs[i], p); err != nil {
			return err
		}
	}
	return nil
}
