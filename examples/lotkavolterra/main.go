// Lotkavolterra demonstrates the generality of the GMR machinery beyond
// river modeling (the paper's "Application to Other Problems"): a
// predator–prey system whose textbook Lotka–Volterra model is incomplete —
// the true prey growth is seasonally forced — is revised by TAG-guided GP
// using the same tag/gp building blocks as the river case study, with a
// hand-written grammar and evaluator.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"gmr/internal/expr"
	"gmr/internal/gp"
	"gmr/internal/metrics"
	"gmr/internal/tag"
)

// Variable layout: x (prey), y (predator), S (seasonal driver).
var varIdx = map[string]int{"x": 0, "y": 1, "S": 2}

// paramIdx: α, β, γ, δ of the textbook model.
var paramIdx = map[string]int{"Ca": 0, "Cb": 1, "Cg": 2, "Cd": 3}

// grammarLV: the initial processes dx/dt = x(Ca − Cb·y) and
// dy/dt = y(Cd·x − Cg), each extensible multiplicatively (ExtP on prey
// growth, ExtQ on predator loss), with the seasonal driver S and random
// constants available as revision material.
func grammarLV() *tag.Grammar {
	prey := expr.Mul(expr.NewVar("x"),
		expr.Sub(expr.NewParam("Ca").Labeled("ExtP"), expr.Mul(expr.NewParam("Cb"), expr.NewVar("y"))))
	pred := expr.Mul(expr.NewVar("y"),
		expr.Sub(expr.Mul(expr.NewParam("Cd"), expr.NewVar("x")), expr.NewParam("Cg").Labeled("ExtQ")))
	root := expr.Add(prey, pred).Labeled("LV")
	alpha := &tag.ElemTree{Name: "alpha:lv", Kind: tag.Alpha, RootSym: "LV", Root: root}

	g := &tag.Grammar{
		Alphas:  []*tag.ElemTree{alpha},
		Betas:   map[string][]*tag.ElemTree{},
		Lexemes: map[string]tag.LexemeGen{},
	}
	for _, sym := range []string{"ExtP", "ExtQ"} {
		site := "Arg" + sym
		// Connector: multiplicative revision of the rate constant.
		g.Betas[sym] = []*tag.ElemTree{{
			Name: "conn:" + sym, Kind: tag.Beta, RootSym: sym,
			Root: expr.Mul(expr.NewFoot(sym), expr.NewSubSite(site)).Labeled(sym),
		}}
		// Extenders: grow the revision term with + and ×.
		g.Betas[site] = []*tag.ElemTree{
			{Name: "ext:add:" + site, Kind: tag.Beta, RootSym: site,
				Root: expr.Add(expr.NewFoot(site), expr.NewSubSite(site)).Labeled(site)},
			{Name: "ext:mul:" + site, Kind: tag.Beta, RootSym: site,
				Root: expr.Mul(expr.NewFoot(site), expr.NewSubSite(site)).Labeled(site)},
		}
		g.Lexemes[site] = func(rng *rand.Rand) *tag.LexemeChoice {
			if rng.Intn(2) == 0 {
				return &tag.LexemeChoice{Name: "S", Tree: expr.NewVar("S")}
			}
			return &tag.LexemeChoice{Name: "R", Tree: expr.NewLit(rng.Float64())}
		}
	}
	return g
}

// simulate integrates a (possibly revised) system over T days with the
// seasonal driver, returning the prey series.
func simulate(prey, pred *expr.Node, params []float64, T int) []float64 {
	x, y := 4.0, 2.0
	vars := make([]float64, 3)
	out := make([]float64, T)
	const h = 0.05
	for t := 0; t < T; t++ {
		vars[2] = 1 + 0.6*math.Sin(2*math.Pi*float64(t)/120) // seasonal driver
		for s := 0; s < 20; s++ {
			vars[0], vars[1] = x, y
			dx, err1 := prey.Eval(&expr.Env{Vars: vars, Params: params})
			dy, err2 := pred.Eval(&expr.Env{Vars: vars, Params: params})
			if err1 != nil || err2 != nil {
				return nil
			}
			x = clamp(x+h*dx, 1e-3, 1e3)
			y = clamp(y+h*dy, 1e-3, 1e3)
		}
		out[t] = x
	}
	return out
}

func clamp(v, lo, hi float64) float64 { return math.Min(math.Max(v, lo), hi) }

// lvEvaluator scores an individual by RMSE of its free-run prey trajectory
// against the observations.
type lvEvaluator struct {
	obs []float64
}

func (e *lvEvaluator) BeginBatch() {}
func (e *lvEvaluator) EndBatch()   {}
func (e *lvEvaluator) Evaluate(ind *gp.Individual) {
	ind.Evaluated, ind.FullEval = true, true
	derived, err := ind.Deriv.Derive()
	if err != nil || derived.Sym != "LV" || len(derived.Kids) != 2 {
		ind.Fitness = math.Inf(1)
		return
	}
	prey, pred := expr.Simplify(derived.Kids[0]), expr.Simplify(derived.Kids[1])
	if expr.Bind(prey, varIdx, paramIdx) != nil || expr.Bind(pred, varIdx, paramIdx) != nil {
		ind.Fitness = math.Inf(1)
		return
	}
	sim := simulate(prey, pred, ind.Params, len(e.obs))
	if sim == nil {
		ind.Fitness = math.Inf(1)
		return
	}
	ind.Fitness = metrics.RMSE(sim, e.obs)
}

func main() {
	// Ground truth: prey growth is seasonally modulated — α·S — which the
	// textbook model omits.
	truthPrey := expr.MustParse("x * (Ca * S - Cb * y)")
	truthPred := expr.MustParse("y * (Cd * x - Cg)")
	if err := expr.Bind(truthPrey, varIdx, paramIdx); err != nil {
		log.Fatal(err)
	}
	if err := expr.Bind(truthPred, varIdx, paramIdx); err != nil {
		log.Fatal(err)
	}
	truthParams := []float64{0.9, 0.4, 0.6, 0.15} // α β γ δ
	const T = 360
	obs := simulate(truthPrey, truthPred, truthParams, T)
	// Light observation noise.
	rng := rand.New(rand.NewSource(5))
	for i := range obs {
		obs[i] *= 1 + 0.03*rng.NormFloat64()
	}

	// Baseline: the textbook model with true rate constants.
	basePrey := expr.MustParse("x * (Ca - Cb * y)")
	basePred := expr.MustParse("y * (Cd * x - Cg)")
	if err := expr.Bind(basePrey, varIdx, paramIdx); err != nil {
		log.Fatal(err)
	}
	if err := expr.Bind(basePred, varIdx, paramIdx); err != nil {
		log.Fatal(err)
	}
	baseline := metrics.RMSE(simulate(basePrey, basePred, truthParams, T), obs)
	fmt.Printf("textbook Lotka–Volterra RMSE: %.3f\n", baseline)

	// Revise with TAG3P.
	g := grammarLV()
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	eng, err := gp.NewEngine(g, &lvEvaluator{obs: obs}, gp.Config{
		PopSize: 80, MaxGen: 30, MinSize: 1, MaxSize: 12, LocalSearchSteps: 3,
		Priors: []gp.Prior{
			{Mean: 0.9, Min: 0.3, Max: 1.5},
			{Mean: 0.4, Min: 0.1, Max: 0.9},
			{Mean: 0.6, Min: 0.2, Max: 1.2},
			{Mean: 0.15, Min: 0.05, Max: 0.5},
		},
		InitParamsAtMean: true,
		Seed:             11,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	derived, err := res.Best.Deriv.Derive()
	if err != nil {
		log.Fatal(err)
	}
	prey := expr.Simplify(derived.Kids[0])
	fmt.Printf("revised model RMSE:           %.3f\n", res.Best.Fitness)
	fmt.Println("revised prey dynamics: dx/dt =", prey.Pretty())
	usesS := false
	prey.Walk(func(n *expr.Node) bool {
		if n.Kind == expr.Var && n.Name == "S" {
			usesS = true
		}
		return true
	})
	if usesS {
		fmt.Println("→ the revision recruited the seasonal driver S, as in the ground truth")
	}
}
