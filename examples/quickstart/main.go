// Quickstart: generate a small synthetic river dataset, run a short
// genetic-model-revision pass, and print the revised process and its
// accuracy. This is the minimal end-to-end use of the GMR library.
package main

import (
	"fmt"
	"log"

	"gmr/internal/core"
	"gmr/internal/dataset"
	"gmr/internal/evalx"
	"gmr/internal/gp"
)

func main() {
	// 1. Data: four years of daily synthetic Nakdong-style measurements
	// (three years training, one year testing).
	ds, err := dataset.Generate(dataset.Config{
		Seed: 1, StartYear: 2000, EndYear: 2003, TrainEndYear: 2002,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %d days (%d train / %d test)\n", ds.Days, ds.TrainEnd, ds.Days-ds.TrainEnd)

	// 2. Revise: a deliberately small configuration so this runs in
	// seconds. The defaults encode the paper's Table II/III knowledge.
	res, err := core.Run(ds, core.Config{
		GP:   gp.Config{PopSize: 60, MaxGen: 15, LocalSearchSteps: 3, Seed: 42},
		Eval: evalx.AllSpeedups(dataset.ModelSimConfig(2, 0, 0)),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the revised model — an interpretable pair of
	// differential equations, not a black box.
	fmt.Printf("\ntrain RMSE %.2f, test RMSE %.2f\n", res.TrainRMSE, res.TestRMSE)
	fmt.Println("\nrevised phytoplankton dynamics:")
	fmt.Println("  dBPhy/dt =", res.BestPhy.Pretty())
	fmt.Println("\nrevised zooplankton dynamics:")
	fmt.Println("  dBZoo/dt =", res.BestZoo.Pretty())
}
