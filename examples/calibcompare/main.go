// Calibcompare runs the nine model-calibration baselines of the paper
// (Section IV-B3) head-to-head on the synthetic river dataset with an equal
// evaluation budget, reporting train/test accuracy and the calibrated
// parameters that drifted furthest from the Table III expert means — the
// paper's point that structure-blind calibration pushes parameters to
// unrealistic values to compensate for missing processes.
package main

import (
	"fmt"
	"log"
	"math"

	"gmr/internal/bio"
	"gmr/internal/calib"
	"gmr/internal/dataset"
	"gmr/internal/metrics"
	"gmr/internal/stats"
)

func main() {
	ds, err := dataset.Generate(dataset.Config{Seed: 7, StartYear: 1998, EndYear: 2004, TrainEndYear: 2002})
	if err != nil {
		log.Fatal(err)
	}
	consts := bio.DefaultConstants()
	simTr := dataset.ModelSimConfig(2, ds.ObsPhy[0], ds.ObsZoo[0])
	simTe := dataset.ModelSimConfig(2, ds.ObsPhy[ds.TrainEnd], ds.ObsZoo[ds.TrainEnd])
	obj, err := calib.RiverObjective(ds.TrainForcing(), ds.TrainObsPhy(), simTr)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := calib.Box(consts)

	phy, zoo, _, err := bio.ManualSystem()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := bio.NewCompiledSystem(phy, zoo)
	if err != nil {
		log.Fatal(err)
	}

	const budget = 3000
	fmt.Printf("%-8s %-12s %-12s %-s\n", "method", "train RMSE", "test RMSE", "largest drift from expert mean")
	for i, c := range calib.All() {
		rng := stats.NewRand(int64(100 + i))
		params, trainF := c.Calibrate(obj, lo, hi, budget, rng)
		te := sys.Predict(ds.TestForcing(), params, simTe)
		testF := metrics.RMSE(te, ds.TestObsPhy())

		// Which parameter moved furthest (relative to its range)?
		worst, drift := "", 0.0
		for j, cc := range consts {
			span := cc.Max - cc.Min
			if span <= 0 {
				continue
			}
			d := math.Abs(params[j]-cc.Mean) / span
			if d > drift {
				drift, worst = d, cc.Name
			}
		}
		fmt.Printf("%-8s %-12.3f %-12.3f %s moved %.0f%% of its range\n",
			c.Name(), trainF, testF, worst, 100*drift)
	}
}
