// Riverforecast is the full case study of the paper at example scale:
// compare the MANUAL knowledge-driven model, a calibrated model (SA), and
// GMR on the synthetic Nakdong dataset; then analyze which variables the
// revised models recruited (the paper's Figure 9 question: did the revision
// discover the pH connection?).
package main

import (
	"fmt"
	"log"

	"gmr/internal/bio"
	"gmr/internal/calib"
	"gmr/internal/core"
	"gmr/internal/dataset"
	"gmr/internal/evalx"
	"gmr/internal/gp"
	"gmr/internal/metrics"
	"gmr/internal/stats"
)

func main() {
	ds, err := dataset.Generate(dataset.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	consts := bio.DefaultConstants()
	simTr := dataset.ModelSimConfig(2, ds.ObsPhy[0], ds.ObsZoo[0])
	simTe := dataset.ModelSimConfig(2, ds.ObsPhy[ds.TrainEnd], ds.ObsZoo[ds.TrainEnd])

	// MANUAL: equations (1)–(2) at Table III means.
	phy, zoo, _, err := bio.ManualSystem()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := bio.NewCompiledSystem(phy, zoo)
	if err != nil {
		log.Fatal(err)
	}
	manual := bio.Means(consts)
	report := func(name string, params []float64) {
		tr := sys.Predict(ds.TrainForcing(), params, simTr)
		te := sys.Predict(ds.TestForcing(), params, simTe)
		fmt.Printf("%-12s train RMSE %8.2f | test RMSE %8.2f MAE %8.2f\n", name,
			metrics.RMSE(tr, ds.TrainObsPhy()),
			metrics.RMSE(te, ds.TestObsPhy()), metrics.MAE(te, ds.TestObsPhy()))
	}
	report("MANUAL", manual)

	// Model calibration: simulated annealing over the Table III box.
	obj, err := calib.RiverObjective(ds.TrainForcing(), ds.TrainObsPhy(), simTr)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := calib.Box(consts)
	calibrated, _ := calib.NewSA().Calibrate(obj, lo, hi, 4000, stats.NewRand(3))
	report("SA-calib", calibrated)

	// Model revision: GMR.
	res, err := core.Run(ds, core.Config{
		GP:   gp.Config{PopSize: 120, MaxGen: 40, LocalSearchSteps: 5, Seed: 1},
		Eval: evalx.AllSpeedups(dataset.ModelSimConfig(2, 0, 0)),
		Runs: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s train RMSE %8.2f | test RMSE %8.2f MAE %8.2f\n",
		"GMR", res.TrainRMSE, res.TestRMSE, res.TestMAE)

	fmt.Println("\nbest revised process:")
	fmt.Println("  dBPhy/dt =", res.BestPhy.Pretty())
	fmt.Println("  dBZoo/dt =", res.BestZoo.Pretty())

	// Ecological analysis (Figure 9): which variables did the best
	// models recruit, and how do they correlate with biomass?
	window := ds.TrainForcing()[:730]
	sel, err := core.AnalyzeSelectivity(res.TopModels, consts, window, simTr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvariable selectivity among the %d best models:\n", len(res.TopModels))
	for _, s := range sel {
		fmt.Printf("  %-5s %5.1f%%  %s\n", s.Variable, s.Percent, s.Correlation)
	}
}
