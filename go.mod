module gmr

go 1.22
