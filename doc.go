// Package gmr is a from-scratch Go implementation of Knowledge-Guided
// Dynamic Systems Modeling (genetic model revision, GMR): tree-adjoining
// grammar guided genetic programming that revises a knowledge-based
// dynamic-system model — structure and parameters — under the guidance of
// prior knowledge, evaluated on a synthetic reproduction of the paper's
// river water quality case study.
//
// The implementation lives in internal packages:
//
//	internal/expr     expression trees, evaluation, simplification, bytecode
//	internal/tag      tree-adjoining grammar: α/β trees, adjunction, derivation trees
//	internal/gp       the TAG3P evolutionary engine
//	internal/grammar  the river-modeling knowledge grammar (Table II)
//	internal/bio      the biological process (equations 1–2, Tables III–IV)
//	internal/river    the hydrological process (equation 9, Appendix A)
//	internal/dataset  the synthetic Nakdong dataset generator
//	internal/evalx    fitness evaluation with the paper's three speedups
//	internal/core     the GMR framework (Figure 5) and Figure 9 analyses
//	internal/calib    nine model-calibration baselines
//	internal/gggp     the GGGP model-revision baseline
//	internal/arimax   the ARIMAX data-driven baseline
//	internal/rnn      the LSTM data-driven baseline
//	internal/experiments  regeneration of every table and figure
//
// Binaries: cmd/gmr (train and inspect a revision), cmd/datagen (synthesize
// the dataset), cmd/riverbench (regenerate Table V and Figures 1/9/10/11).
// See README.md, DESIGN.md, and EXPERIMENTS.md.
package gmr
